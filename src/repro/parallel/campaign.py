"""Fault-tolerant, resumable sweep campaigns.

:class:`~repro.parallel.runner.SweepRunner` is one process pool, one
shot, results in memory: a worker exception kills the whole sweep, a
hung worker stalls it forever, and a killed run restarts from zero.  A
:class:`Campaign` wraps the same deterministic sweep substrate for
grids where that is unacceptable — the paper's 10⁴–10⁶-scenario
characterization cross-products:

- **Persistence.**  Every finished scenario is appended durably to a
  :class:`~repro.parallel.store.ResultStore` *as it lands*, so no
  completed work is ever lost.
- **Checkpoint/resume.**  A campaign started over a store simply skips
  every scenario the store already holds; killing the campaign parent
  at any point (power loss included — appends are fsync'd) and
  rerunning it continues instead of restarting.
- **Failure isolation.**  Each scenario runs in its own worker process,
  so a crash (segfault, OOM kill, ``os._exit``) takes down one attempt,
  not the campaign.  The per-scenario failure policy is
  ``fail_fast`` (first failure aborts, completed results stay stored),
  ``continue`` (record and move on), or ``retry:N`` (N retries with
  exponential backoff, then continue); every failed attempt lands in
  the store's failure ledger.
- **Timeouts.**  A per-scenario wall-clock timeout kills hung workers
  (the only cure for a genuine hang) and feeds the failure policy.
- **Sharding.**  ``shard="i/N"`` selects the scenarios whose id hashes
  to shard *i* of *N*; independent hosts each run one shard into their
  own store and the stores merge into one report by construction
  (:meth:`~repro.parallel.store.ResultStore.ingest`).
- **Elastic scheduling.**  ``elastic=True`` replaces the static shard
  arithmetic with the lease ledger (:mod:`repro.parallel.leases`):
  any number of workers point at the *same* store, claim scenario
  batches, heartbeat while they work, and reclaim batches whose holder
  died — no indices, no fixed pool size, no coordinator.  Fencing
  tokens ride into the result records, so a zombie worker resuming
  after its lease expired is detected (not corrupting — results are
  deterministic) by the store's duplicate-id check.
- **Streaming aggregation.**  Worst-block-RBER / wear / read-pressure
  percentiles update as results land (:class:`StreamingAggregate`), so
  a week-long campaign is observable while it runs.

**The determinism contract does the hard part.**  Scenario results are
bit-determined by the scenario alone (spawn-keyed seeding) and reports
merge order-free by scenario id — so a campaign that crashed, resumed,
retried, timed out, and ran as two shards on two hosts *must* produce a
report bit-identical to one uninterrupted serial
``SweepRunner(workers=1).run(grid)``.  The equivalence suite
(``tests/parallel/test_campaign.py``) pins exactly that, with every
failure mode injected deterministically via :mod:`repro.testing.faults`.
"""

from __future__ import annotations

import hashlib
import os
import re
import socket
import time
import traceback
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path

from repro import obs
from repro.parallel.leases import (
    DEFAULT_LEASE_TTL,
    LeaseLedger,
    sanitize_owner,
)
from repro.parallel.results import ScenarioFailure, ScenarioResult, SweepReport
from repro.parallel.runner import (
    _pool_context,
    _reject_nested_process_pools,
    default_workers,
)
from repro.parallel.store import ResultStore
from repro.workloads.grid import Scenario, ScenarioGrid

# repro.controller.factory is imported lazily (see runner.py: the factory
# imports repro.parallel.results, so importing it here would be circular
# at package init).


def _trace_slug(scenario_id: str) -> str:
    """Filename-safe form of a scenario id for trace labels."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", scenario_id)


def shard_of(scenario_id: str, shards: int) -> int:
    """Which shard of *shards* owns *scenario_id*.

    A stable content hash (never Python's randomized ``hash``), so every
    host computes the same partition and the N shard runs cover the grid
    exactly once with no coordination.
    """
    digest = hashlib.sha256(scenario_id.encode()).digest()
    return int.from_bytes(digest[:8], "big") % shards


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse ``"i/N"`` (0-based shard index) into ``(i, N)``."""
    index_text, sep, total_text = spec.partition("/")
    try:
        if not sep:
            raise ValueError
        index, total = int(index_text), int(total_text)
    except ValueError:
        raise ValueError(
            f"bad shard spec {spec!r}; expected 'i/N' with 0 <= i < N"
        ) from None
    if total < 1 or not 0 <= index < total:
        raise ValueError(
            f"bad shard spec {spec!r}; expected 'i/N' with 0 <= i < N"
        )
    return index, total


@dataclass(frozen=True)
class FailurePolicy:
    """What a campaign does when a scenario attempt fails.

    *kind* is ``"fail_fast"`` (abort the campaign; stored results
    survive), ``"continue"`` (ledger the failure, move on), or
    ``"retry"`` (up to *retries* retries with exponential backoff —
    ``backoff * backoff_factor**(attempt-1)`` seconds after the
    *attempt*-th failure — then continue).  Every failed attempt is
    ledgered regardless of kind.
    """

    kind: str = "fail_fast"
    retries: int = 0
    backoff: float = 0.5
    backoff_factor: float = 2.0

    _KINDS = ("fail_fast", "continue", "retry")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown failure policy {self.kind!r}; expected one of "
                f"{self._KINDS}"
            )
        if self.kind == "retry" and self.retries < 1:
            raise ValueError("retry policy needs at least one retry")
        if self.backoff < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be >= 0 with factor >= 1")

    @classmethod
    def parse(
        cls, text: str, backoff: float = 0.5, backoff_factor: float = 2.0
    ) -> "FailurePolicy":
        """Parse the CLI form: ``fail_fast`` | ``continue`` | ``retry:N``."""
        kind, sep, count = text.partition(":")
        if kind in ("fail_fast", "continue") and not sep:
            return cls(kind=kind, backoff=backoff, backoff_factor=backoff_factor)
        if kind == "retry" and sep:
            try:
                retries = int(count)
            except ValueError:
                retries = 0
            return cls(
                kind="retry",
                retries=retries,
                backoff=backoff,
                backoff_factor=backoff_factor,
            )
        raise ValueError(
            f"bad failure policy {text!r}; expected 'fail_fast', "
            f"'continue', or 'retry:N'"
        )

    def retry_allowed(self, attempt: int) -> bool:
        """May a scenario whose *attempt*-th try just failed run again?"""
        return self.kind == "retry" and attempt <= self.retries

    def delay(self, attempt: int) -> float:
        """Backoff before the retry that follows failed attempt *attempt*."""
        return self.backoff * self.backoff_factor ** (attempt - 1)


class StreamingAggregate:
    """Live campaign digest, updated as each result lands.

    Tracks exact percentile inputs (one scalar per scenario — a million
    scenarios is a few megabytes), so :meth:`snapshot` reports true
    percentiles of the results so far, not sketch approximations:
    worst-block RBER (flash-chip scenarios with a trajectory), peak
    per-interval read pressure, and end-of-run wear, plus summed
    uncorrectable/data-loss counters.
    """

    def __init__(self) -> None:
        self.completed = 0
        self.failed_attempts = 0
        self.uncorrectable_pages = 0
        self.data_loss_events = 0
        self._worst_rber: list[float] = []
        self._peak_reads: list[float] = []
        self._max_wear: list[float] = []

    def observe(self, result: ScenarioResult) -> None:
        """Fold one landed scenario result into the aggregate."""
        self.completed += 1
        backend = result.backend
        self.uncorrectable_pages += int(backend.get("uncorrectable_pages", 0))
        self.data_loss_events += int(backend.get("data_loss_events", 0))
        self._peak_reads.append(
            float(result.stats.get("peak_block_reads_per_interval", 0))
        )
        self._max_wear.append(float(result.stats.get("max_pe_cycles", 0)))
        if result.trajectory:
            rber = result.trajectory[-1].get("worst_block_rber")
            if rber is not None:
                self._worst_rber.append(float(rber))

    def observe_failure(self) -> None:
        self.failed_attempts += 1

    @staticmethod
    def _percentiles(values: list[float]) -> dict | None:
        if not values:
            return None
        ordered = sorted(values)
        n = len(ordered)

        def rank(q: float) -> float:
            return ordered[min(n - 1, max(0, -(-int(q * n) // 1) - 1))]

        return {
            "p50": rank(0.50),
            "p90": rank(0.90),
            "p99": rank(0.99),
            "max": ordered[-1],
            "n": n,
        }

    def snapshot(self) -> dict:
        """Point-in-time digest (JSON-ready)."""
        return {
            "completed": self.completed,
            "failed_attempts": self.failed_attempts,
            "uncorrectable_pages": self.uncorrectable_pages,
            "data_loss_events": self.data_loss_events,
            "worst_block_rber": self._percentiles(self._worst_rber),
            "peak_block_reads_per_interval": self._percentiles(self._peak_reads),
            "max_pe_cycles": self._percentiles(self._max_wear),
        }


def _campaign_worker(
    conn,
    scenario: Scenario,
    trace_label: str | None = None,
    span_parent: str | None = None,
) -> None:
    """Worker entry: run one scenario, report through the pipe, exit.

    Runs in its own (non-daemonic) process so any failure mode — an
    exception (shipped back as ``("err", traceback)``), a hard crash
    (the pipe just hits EOF), a hang (the parent kills us) — is
    isolated to this one attempt.  Non-daemonic matters: a scenario is
    free to fork its own block-group executor pool under ``workers=1``
    campaigns, exactly like the in-process sweep path.

    *trace_label* / *span_parent* carry the parent's telemetry identity
    in: the worker traces into its own deterministically named file,
    with its ``scenario.run`` root span parented (cross-file) under the
    scheduler's per-attempt span.
    """
    from repro.controller.factory import run_scenario

    if trace_label is not None:
        # Fork-inherited state wins over the env; rebind gives this
        # worker its own file and a pid-free deterministic id prefix.
        obs.configure_from_env(label=trace_label)
        obs.rebind(trace_label)
    try:
        result = run_scenario(scenario, span_parent=span_parent)
        conn.send(("ok", result))
    except BaseException:  # noqa: BLE001 - reported to the parent
        try:
            conn.send(("err", traceback.format_exc().strip()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class _Attempt:
    """One queued execution attempt of one scenario."""

    scenario: Scenario
    attempt: int = 1
    #: monotonic time before which this attempt must not launch (backoff).
    not_before: float = 0.0


@dataclass
class _Running:
    """One in-flight attempt: its process, pipe, and kill deadline."""

    entry: _Attempt
    process: object
    conn: object
    deadline: float | None
    #: monotonic launch time — failure-ledger durations derive from it.
    started: float = 0.0
    #: the scheduler's detached per-attempt span (None when not tracing);
    #: begun at launch so a SIGKILL'd worker still has an attempt span,
    #: ended at reap with the outcome attribute.
    span: object = None

    def reap(self) -> int | None:
        """Join the process and close the parent's pipe end."""
        self.process.join()
        try:
            self.conn.close()
        except OSError:
            pass
        return self.process.exitcode


class Campaign:
    """A resumable, fault-tolerant run of one scenario grid over a store.

    Parameters
    ----------
    grid:
        A :class:`~repro.workloads.grid.ScenarioGrid` or iterable of
        scenarios (unique ids).  The *full* grid, even when sharding —
        the shard filter is applied internally so every shard binds the
        store to the same grid fingerprint.
    store:
        A :class:`~repro.parallel.store.ResultStore` or a directory
        path.  Scenarios already in the store are skipped (resume).
    workers:
        Maximum in-flight scenario processes (default
        :func:`~repro.parallel.runner.default_workers`).  Every
        scenario runs in its own forked worker regardless — ``workers``
        bounds concurrency, it does not choose an execution mode — so
        crash/timeout isolation is uniform from 1 worker up.
    on_failure:
        A :class:`FailurePolicy` or its CLI string form
        (``fail_fast`` | ``continue`` | ``retry:N``).
    timeout:
        Per-scenario wall-clock seconds before the attempt's worker is
        killed (``None`` = never).
    shard:
        ``"i/N"`` (or an ``(i, N)`` tuple) to run only the scenarios
        hashing to shard *i* of *N* (:func:`shard_of`).
    elastic:
        Schedule through the lease ledger instead of a static shard:
        this worker claims unowned scenario batches, heartbeats them,
        and reclaims batches whose holder stopped heartbeating.  Start
        as many elastic campaigns over one store as you like — they
        partition the grid dynamically.  Mutually exclusive with
        *shard*.
    lease_ttl:
        Elastic only: seconds without a heartbeat before any worker may
        reclaim a lease.  Must be generous against the slowest single
        scenario's *scheduling* gaps (renewals happen between poll
        ticks, several per TTL) and cross-host clock skew.
    lease_batch:
        Elastic only: scenarios per claimed batch (default: the plan's
        auto size).  The first worker's plan wins; later workers adopt
        its batch size.
    worker_name:
        Elastic only: this worker's store-writer and lease-owner name
        (default ``w-<hostname>-<pid>``).  Must be unique among
        concurrently live workers of one store.
    progress_interval:
        Emit the *progress* callback at least every this-many seconds
        (instead of after every landed result).

    :meth:`run` returns the merged :class:`SweepReport` of everything
    the store now holds for this grid — bit-identical to one serial
    uninterrupted sweep over the same completed scenarios.
    """

    def __init__(
        self,
        grid: ScenarioGrid | Iterable[Scenario],
        store: ResultStore | str,
        *,
        workers: int | None = None,
        on_failure: FailurePolicy | str = "fail_fast",
        timeout: float | None = None,
        shard: str | tuple[int, int] | None = None,
        elastic: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        lease_batch: int | None = None,
        worker_name: str | None = None,
        progress_interval: float | None = None,
        poll_interval: float = 0.02,
    ):
        self.scenarios = list(grid)
        ids = [s.scenario_id for s in self.scenarios]
        duplicates = sorted(i for i, n in Counter(ids).items() if n > 1)
        if duplicates:
            raise ValueError(
                f"scenario ids must be unique; duplicated: {duplicates}"
            )
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("need at least one worker")
        self.policy = (
            FailurePolicy.parse(on_failure)
            if isinstance(on_failure, str)
            else on_failure
        )
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive seconds (or None)")
        self.timeout = timeout
        self.shard = (
            parse_shard(shard) if isinstance(shard, str) else shard
        )
        if self.shard is not None:
            index, total = self.shard
            if total < 1 or not 0 <= index < total:
                raise ValueError(f"bad shard {self.shard!r}")
        self.elastic = bool(elastic)
        if self.elastic and self.shard is not None:
            raise ValueError(
                "elastic scheduling and --shard are mutually exclusive: "
                "leases partition the grid dynamically"
            )
        if lease_ttl <= 0:
            raise ValueError("lease ttl must be positive seconds")
        self.lease_ttl = float(lease_ttl)
        self.lease_batch = lease_batch
        if self.elastic:
            writer = sanitize_owner(
                worker_name
                if worker_name is not None
                else f"w-{socket.gethostname()}-{os.getpid()}"
            )
        elif self.shard is not None:
            writer = f"shard{self.shard[0]}of{self.shard[1]}"
        else:
            writer = "all"
        self.worker_name = writer
        self.store = (
            store
            if isinstance(store, ResultStore)
            else ResultStore(store, writer=writer)
        )
        self.progress_interval = (
            None if progress_interval is None else float(progress_interval)
        )
        self.poll_interval = float(poll_interval)
        #: scenarios this run skipped because the store already held them.
        self.resumed = 0
        #: permanent failures of this run (policy said stop retrying).
        self.failed: list[dict] = []
        #: every failed attempt of this run (mirror of the store ledger).
        self.ledger: list[dict] = []
        #: elastic: batches this worker lost to a reclaim (zombie fence).
        self.fenced_batches = 0
        self.aggregate = StreamingAggregate()
        self._lease = None
        self._fenced = False
        self._ledger_handle: LeaseLedger | None = None
        self._last_renew = 0.0
        self._last_progress = 0.0
        # Telemetry: the campaign.run root span's id (attempt spans and
        # worker scenario spans hang off it); None when not tracing.
        self._root_span_id: str | None = None

    # ------------------------------------------------------------------
    # Shard / scope helpers
    # ------------------------------------------------------------------

    def _mine(self) -> list[Scenario]:
        """The scenarios this campaign instance is responsible for."""
        if self.shard is None:
            return list(self.scenarios)
        index, total = self.shard
        return [
            s
            for s in self.scenarios
            if shard_of(s.scenario_id, total) == index
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, progress=None) -> SweepReport:
        """Run (or resume) the campaign and return the merged report.

        *progress*, when given, is called with
        ``self.aggregate.snapshot()`` after every landed result.  The
        report covers every grid scenario the store holds once this
        run's scenarios finish — under a shard spec that includes any
        other shards' results already merged into the store.
        """
        from repro.workloads.trace_cache import warm_trace_cache

        self.store.bind(self.scenarios)
        mine = self._mine()
        stored = self.store.load()
        grid_ids = {s.scenario_id for s in self.scenarios}
        for scenario_id, result in stored.items():
            if scenario_id in grid_ids:
                self.aggregate.observe(result)
        to_run = [s for s in mine if s.scenario_id not in stored]
        self.resumed = len(mine) - len(to_run)
        if self.workers > 1:
            _reject_nested_process_pools(to_run, self.workers)
        context = _pool_context()
        if to_run and context.get_start_method() == "fork":
            # Forked workers inherit every pre-generated trace
            # copy-on-write (identical results either way — generation
            # is deterministic in the scenario).
            warm_trace_cache(to_run)
        tracer = obs.tracer()
        root_span = None
        if tracer.enabled:
            root_span = tracer.begin(
                "campaign.run",
                worker=self.worker_name,
                scenarios=len(self.scenarios),
                resumed=self.resumed,
                elastic=self.elastic,
            )
            self._root_span_id = root_span.id
        try:
            if self.elastic:
                self._run_elastic(context, progress)
            else:
                self._execute(to_run, context, progress)
        except BaseException as exc:
            if root_span is not None:
                tracer.end(root_span, error=type(exc).__name__)
                root_span = None
            raise
        finally:
            self.store.close()
            if root_span is not None:
                tracer.end(root_span, completed=self.aggregate.completed)
            self._root_span_id = None
        return self.report()

    def _run_elastic(self, context, progress) -> None:
        """Claim → execute → mark-done over the lease ledger, until the
        whole plan is retired (by us or by any other worker)."""
        ledger = LeaseLedger(
            self.store.root, owner=self.worker_name, ttl=self.lease_ttl
        )
        self._ledger_handle = ledger
        by_id = {s.scenario_id: s for s in self.scenarios}
        batches = dict(ledger.plan(sorted(by_id), batch_size=self.lease_batch))
        pending = set(batches)
        while pending:
            claimed = None
            for state in ledger.states():
                if state.batch_id not in pending:
                    continue
                if state.done:
                    pending.discard(state.batch_id)
                    continue
                lease = ledger.claim(state.batch_id)
                if lease is not None:
                    claimed = lease
                    break
            if claimed is None:
                if not pending:
                    break
                # Every remaining batch is held by a live peer: wait for
                # it to finish (done) or for its heartbeat to go stale.
                time.sleep(
                    max(self.poll_interval, min(self.lease_ttl / 4, 1.0))
                )
                continue
            # Re-read stored ids per batch: a previous holder may have
            # completed part of it before dying (O(segments)+tail scan).
            stored = self.store.scenario_ids()
            to_run = [
                by_id[i]
                for i in batches[claimed.batch_id]
                if i in by_id and i not in stored
            ]
            self._lease = claimed
            self._fenced = False
            self._last_renew = time.monotonic()
            try:
                self._execute(to_run, context, progress)
            finally:
                self._lease = None
            if self._fenced:
                # Reclaimed from under us — the new holder (or whoever
                # follows) finishes the batch and marks it done.
                continue
            stored = self.store.scenario_ids()
            if all(i in stored for i in batches[claimed.batch_id]):
                ledger.mark_done(claimed)
            # else: some scenario permanently failed under a
            # continue/retry policy.  Leave the batch un-done — its
            # lease expires, and a later resume (with the fault fixed)
            # reclaims and completes it, exactly like a non-elastic
            # resume re-runs ledgered failures.  Either way this worker
            # is finished with the batch.
            pending.discard(claimed.batch_id)

    def _renew_lease(self) -> None:
        """Heartbeat the held lease about three times per TTL; a failed
        renewal means we were fenced — drop the batch's queued work."""
        if self._lease is None:
            return
        now = time.monotonic()
        if now - self._last_renew < self.lease_ttl / 3:
            return
        if self._ledger_handle.renew(self._lease):
            self._last_renew = now
        else:
            self._fenced = True
            self.fenced_batches += 1

    def report(self) -> SweepReport:
        """Merged report of everything the store holds for this grid."""
        results = self.store.load()
        grid_ids = {s.scenario_id for s in self.scenarios}
        ordered = tuple(
            sorted(
                (r for i, r in results.items() if i in grid_ids),
                key=lambda r: r.scenario_id,
            )
        )
        return SweepReport(results=ordered, workers=self.workers)

    def _execute(self, scenarios, context, progress) -> None:
        """The scheduling loop: launch, multiplex, time out, retry."""
        queue = [_Attempt(scenario) for scenario in scenarios]
        inflight: dict[str, _Running] = {}
        try:
            while queue or inflight:
                now = time.monotonic()
                # Launch every ready attempt the worker budget allows.
                for entry in list(queue):
                    if len(inflight) >= self.workers:
                        break
                    if entry.not_before > now:
                        continue
                    queue.remove(entry)
                    inflight[entry.scenario.scenario_id] = self._launch(
                        entry, context
                    )
                self._poll(queue, inflight, progress)
        except BaseException:
            # fail_fast, a store error, or KeyboardInterrupt: don't
            # leave orphan workers running scenarios nobody will reap.
            for running in inflight.values():
                running.process.kill()
                running.reap()
                self._end_attempt_span(running, "aborted")
            raise

    def _launch(self, entry: _Attempt, context) -> _Running:
        parent_conn, child_conn = context.Pipe(duplex=False)
        tracer = obs.tracer()
        trace_label = None
        span = None
        if tracer.enabled:
            # Deterministic worker identity: stable across runs, unique
            # across this campaign's attempts (the attempt number
            # disambiguates retries of one scenario).
            trace_label = (
                f"{self.worker_name}."
                f"{_trace_slug(entry.scenario.scenario_id)}.a{entry.attempt}"
            )
            # Detached: concurrent attempts overlap arbitrarily, and the
            # span must outlive this call (ended at reap in _poll) — so
            # it never sits on the scheduler thread's span stack.
            span = tracer.begin(
                "campaign.attempt",
                parent=self._root_span_id,
                detached=True,
                scenario=entry.scenario.scenario_id,
                attempt=entry.attempt,
            )
        process = context.Process(
            target=_campaign_worker,
            args=(child_conn, entry.scenario, trace_label,
                  span.id if span is not None else None),
            name=f"repro-campaign-{entry.scenario.scenario_id}",
        )
        process.start()
        child_conn.close()
        started = time.monotonic()
        deadline = (
            started + self.timeout if self.timeout is not None else None
        )
        return _Running(entry, process, parent_conn, deadline, started, span)

    def _end_attempt_span(self, running: _Running, outcome: str) -> None:
        """Close one attempt's detached span with its outcome."""
        if running.span is not None:
            obs.tracer().end(running.span, outcome=outcome)
            running.span = None

    def _poll(self, queue, inflight, progress) -> None:
        """Wait for one scheduling event: a result, a death, a timeout,
        or a backoff expiry."""
        self._renew_lease()
        if self._lease is not None and self._fenced and queue:
            # Fenced off: the batch belongs to another worker now.
            # In-flight attempts drain (their results are stamped with
            # our stale token — detectable, and harmless by
            # determinism); queued ones are the new holder's job.
            queue.clear()
        now = time.monotonic()
        wait_until = now + self.poll_interval
        for running in inflight.values():
            if running.deadline is not None:
                wait_until = min(wait_until, running.deadline)
        for entry in queue:
            if entry.not_before > now:
                wait_until = min(wait_until, entry.not_before)
        timeout = max(0.0, wait_until - now)
        conns = [running.conn for running in inflight.values()]
        if conns:
            ready = _connection_wait(conns, timeout)
        else:
            time.sleep(timeout)
            ready = []
        by_conn = {running.conn: running for running in inflight.values()}
        for conn in ready:
            running = by_conn[conn]
            scenario_id = running.entry.scenario.scenario_id
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                exitcode = running.reap()
                del inflight[scenario_id]
                self._end_attempt_span(running, "worker-death")
                self._attempt_failed(
                    queue,
                    running.entry,
                    kind="worker-death",
                    detail=(
                        f"worker process died with exit code {exitcode} "
                        f"before reporting a result (crash, os._exit, or "
                        f"kill)"
                    ),
                    duration=time.monotonic() - running.started,
                )
                continue
            running.reap()
            del inflight[scenario_id]
            if kind == "ok":
                self._end_attempt_span(running, "ok")
                self.store.append(payload, lease=self._lease)
                self.aggregate.observe(payload)
                obs.counter("campaign.completed").inc()
                if progress is not None and self.progress_interval is None:
                    progress(self.aggregate.snapshot())
            else:
                self._end_attempt_span(running, "exception")
                self._attempt_failed(
                    queue,
                    running.entry,
                    kind="exception",
                    detail=payload,
                    duration=time.monotonic() - running.started,
                )
        # Hung workers: past-deadline attempts are killed and fed to the
        # failure policy exactly like a crash.
        now = time.monotonic()
        for scenario_id, running in list(inflight.items()):
            if running.deadline is None or now < running.deadline:
                continue
            running.process.kill()
            running.reap()
            del inflight[scenario_id]
            self._end_attempt_span(running, "timeout")
            self._attempt_failed(
                queue,
                running.entry,
                kind="timeout",
                detail=(
                    f"scenario exceeded the {self.timeout:g}s wall-clock "
                    f"timeout; worker killed"
                ),
                duration=now - running.started,
            )
        if progress is not None and self.progress_interval is not None:
            now = time.monotonic()
            if now - self._last_progress >= self.progress_interval:
                self._last_progress = now
                progress(self.aggregate.snapshot())

    def _attempt_failed(
        self,
        queue,
        entry: _Attempt,
        kind: str,
        detail: str,
        duration: float | None = None,
    ):
        """Ledger one failed attempt and apply the failure policy."""
        scenario_id = entry.scenario.scenario_id
        record = self.store.record_failure(
            scenario_id, entry.attempt, kind, detail, duration=duration
        )
        self.ledger.append(record)
        self.aggregate.observe_failure()
        obs.counter("campaign.failures").inc()
        if self.policy.kind == "fail_fast":
            raise ScenarioFailure(scenario_id, f"[{kind}] {detail}")
        if self.policy.retry_allowed(entry.attempt):
            queue.append(
                _Attempt(
                    scenario=entry.scenario,
                    attempt=entry.attempt + 1,
                    not_before=time.monotonic()
                    + self.policy.delay(entry.attempt),
                )
            )
            return
        self.failed.append(record)


def run_campaign(
    grid: ScenarioGrid | Iterable[Scenario],
    store: ResultStore | str,
    **kwargs,
) -> SweepReport:
    """One-call convenience: ``Campaign(grid, store, **kwargs).run()``."""
    return Campaign(grid, store, **kwargs).run()


def campaign_status(
    root: str | os.PathLike, ttl: float = DEFAULT_LEASE_TTL
) -> dict:
    """Live health of a campaign directory, from store state alone.

    Works on a running, crashed, or finished campaign — everything is
    derived from the durable artifacts (manifest, records, segments,
    failure ledger, lease claim files), so ``--status`` needs no
    connection to any worker.  *ttl* only affects which leases are
    flagged stale (a reader cannot know the workers' actual TTL).
    """
    store = ResultStore(root)
    manifest = store.read_manifest()
    if manifest is None:
        raise ValueError(f"{root} is not an initialized campaign store")
    results = store.load()
    aggregate = StreamingAggregate()
    for scenario_id in sorted(results):
        aggregate.observe(results[scenario_id])
    failures = store.failures()
    kinds = Counter(f.get("kind", "unknown") for f in failures)
    leases = []
    if (Path(root) / "leases").exists():
        ledger = LeaseLedger(root, owner="status-reader", ttl=ttl)
        now = time.time()
        for state in ledger.states():
            age = state.age(now)
            leases.append(
                {
                    "batch": state.batch_id,
                    "owner": state.owner,
                    "token": state.token,
                    "done": state.done,
                    "heartbeat_age_seconds": (
                        None if state.owner is None else age
                    ),
                    "stale": (
                        state.owner is not None
                        and not state.done
                        and age >= ttl
                    ),
                }
            )
    return {
        "root": str(root),
        "scenario_count": manifest.get("scenario_count"),
        "completed": len(results),
        "corrupt_records": store.corrupt_records,
        "zombie_writes": store.zombie_writes,
        "store": store.describe(),
        "failures": {"total": len(failures), "kinds": dict(kinds)},
        "leases": leases,
        "aggregate": aggregate.snapshot(),
    }
