"""Endurance and refresh-interval dynamics (paper Sections 3 and 6).

Flash lifetime ends when the worst-case error count — at the end of a
refresh interval, when retention and read-disturb errors peak — exceeds the
ECC correction capability.  This module simulates one refresh interval
day-by-day under a Vpass policy (baseline fixed-nominal, or the real
VpassTuner running on an analytic block) and bisects over P/E cycles for
the endurance: the highest wear at which the worst-case RBER still fits.

The analytic flash-channel model makes this tractable: each day costs a few
closed-form RBER evaluations instead of millions of simulated reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import SECONDS_PER_DAY, VPASS_NOMINAL, REFRESH_INTERVAL_DAYS
from repro.ecc import EccConfig, DEFAULT_ECC
from repro.core.vpass_tuning import TunerConfig, VpassTuner
from repro.model.rber import FlashChannelModel
from repro.physics.read_disturb import vpass_exposure_weight


@dataclass
class AnalyticTunableBlock:
    """Analytic implementation of the ``TunableBlock`` protocol.

    Represents the hottest block of a drive at a given wear level, with the
    retention age and accumulated disturb exposure evolving as the lifetime
    simulation advances through a refresh interval.
    """

    model: FlashChannelModel
    ecc: EccConfig = field(default_factory=lambda: DEFAULT_ECC)
    pe_cycles: float = 8000.0
    page_bits_value: int = 65536
    pages: int = 256
    age_seconds: float = 0.0
    exposure: float = 0.0

    @property
    def page_bits(self) -> int:
        return self.page_bits_value

    def measure_worst_page_errors(self) -> int:
        """MEE: the worst page's error count among statistically identical
        pages (Poisson upper quantile of the current expected RBER)."""
        rber = self.model.rber_at_exposure(self.pe_cycles, self.age_seconds, self.exposure)
        return self.ecc.expected_worst_page_errors(rber, self.page_bits_value, self.pages)

    def measure_extra_errors(self, vpass: float) -> int:
        """Expected newly-zero bits when reading a page at *vpass*."""
        extra = self.model.additional_pass_through_rber(
            vpass, self.pe_cycles, self.age_seconds
        )
        return int(round(extra * self.page_bits_value))


class LifetimePolicy:
    """Chooses the block's operating Vpass for each day of an interval."""

    def start_interval(self, block: AnalyticTunableBlock) -> None:
        """Called at the start of each refresh interval (data just moved)."""

    def vpass_for_day(self, block: AnalyticTunableBlock, day: int) -> float:
        raise NotImplementedError


class BaselinePolicy(LifetimePolicy):
    """No mitigation: nominal Vpass every day."""

    def vpass_for_day(self, block: AnalyticTunableBlock, day: int) -> float:
        return VPASS_NOMINAL


class TunedVpassPolicy(LifetimePolicy):
    """Run the actual VpassTuner daily, exactly as the controller would:
    a full search after each refresh (Action 2) and a verify-and-raise pass
    on the other days (Action 1)."""

    def __init__(self, tuner: VpassTuner | None = None):
        self.tuner = tuner if tuner is not None else VpassTuner()
        self.current_vpass = VPASS_NOMINAL
        self.outcomes: list = []

    def start_interval(self, block: AnalyticTunableBlock) -> None:
        self.current_vpass = VPASS_NOMINAL
        self.outcomes = []

    def vpass_for_day(self, block: AnalyticTunableBlock, day: int) -> float:
        if day == 0:
            outcome = self.tuner.tune_after_refresh(block)
        else:
            outcome = self.tuner.verify_daily(block, self.current_vpass)
        self.current_vpass = outcome.vpass
        self.outcomes.append(outcome)
        return outcome.vpass


@dataclass(frozen=True)
class DayRecord:
    """State of the hottest block at the end of one day."""

    day: int
    vpass: float
    rber_end_of_day: float
    exposure: float


def simulate_refresh_interval(
    model: FlashChannelModel,
    pe_cycles: float,
    reads_per_day: float,
    policy: LifetimePolicy,
    interval_days: float = REFRESH_INTERVAL_DAYS,
    ecc: EccConfig = DEFAULT_ECC,
    page_bits: int = 65536,
    pages: int = 256,
) -> list[DayRecord]:
    """Simulate one refresh interval day-by-day and return daily records.

    ``reads_per_day`` is the read pressure on the hottest block (reads to
    its pages per day); every read disturbs the block at the policy's
    chosen Vpass for that day.
    """
    if reads_per_day < 0:
        raise ValueError("reads per day cannot be negative")
    block = AnalyticTunableBlock(
        model=model,
        ecc=ecc,
        pe_cycles=pe_cycles,
        page_bits_value=page_bits,
        pages=pages,
    )
    policy.start_interval(block)
    records: list[DayRecord] = []
    for day in range(int(interval_days)):
        vpass = policy.vpass_for_day(block, day)
        block.exposure += reads_per_day * float(vpass_exposure_weight(vpass))
        block.age_seconds = (day + 1) * SECONDS_PER_DAY
        rber = model.rber_at_exposure(
            pe_cycles,
            block.age_seconds,
            block.exposure,
            pass_through_vpass=vpass,
        )
        records.append(DayRecord(day=day, vpass=vpass, rber_end_of_day=rber, exposure=block.exposure))
    return records


def worst_case_rber(
    model: FlashChannelModel,
    pe_cycles: float,
    reads_per_day: float,
    policy: LifetimePolicy,
    interval_days: float = REFRESH_INTERVAL_DAYS,
    ecc: EccConfig = DEFAULT_ECC,
    page_bits: int = 65536,
    pages: int = 256,
) -> float:
    """Peak RBER across the refresh interval (normally its last day)."""
    records = simulate_refresh_interval(
        model, pe_cycles, reads_per_day, policy, interval_days, ecc, page_bits, pages
    )
    return max(r.rber_end_of_day for r in records)


def endurance(
    model: FlashChannelModel,
    reads_per_day: float,
    policy_factory,
    rber_limit: float | None = None,
    interval_days: float = REFRESH_INTERVAL_DAYS,
    ecc: EccConfig = DEFAULT_ECC,
    pe_resolution: int = 50,
    pe_min: int = 200,
    pe_max: int = 40000,
    page_bits: int = 65536,
    pages: int = 256,
) -> int:
    """P/E cycle endurance: the highest wear whose worst-case interval RBER
    stays within the ECC limit (paper Figure 8's y-axis).

    ``policy_factory`` is a zero-argument callable returning a fresh policy
    (policies are stateful across the days of an interval).
    """
    limit = ecc.tolerable_rber if rber_limit is None else float(rber_limit)

    def fits(pe: int) -> bool:
        policy = policy_factory()
        return (
            worst_case_rber(
                model, pe, reads_per_day, policy, interval_days, ecc, page_bits, pages
            )
            <= limit
        )

    lo, hi = pe_min, pe_max
    if not fits(lo):
        return 0
    if fits(hi):
        return hi
    # Invariant: fits(lo) and not fits(hi).
    while hi - lo > pe_resolution:
        mid = (lo + hi) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid
    return lo


def refresh_interval_series(
    model: FlashChannelModel,
    pe_cycles: float,
    reads_per_day: float,
    intervals: int = 3,
    interval_days: float = REFRESH_INTERVAL_DAYS,
    tuner_config: TunerConfig | None = None,
) -> dict[str, list[float]]:
    """Error-rate timeline over several refresh intervals, with and without
    mitigation (paper Figure 7).

    Returns day-indexed series; the error rate excludes the read errors
    introduced by reducing Vpass, as the figure's caption specifies (those
    are absorbed by the unused ECC margin).
    """
    out: dict[str, list[float]] = {"day": [], "unmitigated": [], "mitigated": []}
    tuned = TunedVpassPolicy(VpassTuner(config=tuner_config) if tuner_config else None)
    baseline = BaselinePolicy()
    for interval in range(intervals):
        base_records = simulate_refresh_interval(
            model, pe_cycles, reads_per_day, baseline, interval_days
        )
        tuned_block = AnalyticTunableBlock(model=model, pe_cycles=pe_cycles)
        tuned.start_interval(tuned_block)
        for day in range(int(interval_days)):
            vpass = tuned.vpass_for_day(tuned_block, day)
            tuned_block.exposure += reads_per_day * float(vpass_exposure_weight(vpass))
            tuned_block.age_seconds = (day + 1) * SECONDS_PER_DAY
            mitigated = model.rber_at_exposure(
                pe_cycles, tuned_block.age_seconds, tuned_block.exposure
            )
            out["day"].append(interval * interval_days + day + 1)
            out["unmitigated"].append(base_records[day].rber_end_of_day)
            out["mitigated"].append(mitigated)
    return out
