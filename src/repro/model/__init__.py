"""Analytic flash-channel model.

Where the Monte-Carlo device layer (:mod:`repro.flash`) simulates individual
cells, this package computes the *expected* raw bit error rate in closed
form from the same physics: per-state distribution mass is propagated
through the retention shift and the read-disturb drift law, using the fact
that a cell crosses a read reference iff its susceptibility exceeds a
deterministic requirement (so the susceptibility survival function gives
exact crossing probabilities).

The analytic layer is what makes lifetime studies tractable: evaluating the
RBER of a block after a hundred thousand reads takes microseconds instead
of simulating the reads.  Consistency between the two layers is enforced by
integration tests.
"""

from repro.model.rber import FlashChannelModel, RberBreakdown
from repro.model.lifetime import (
    LifetimePolicy,
    BaselinePolicy,
    TunedVpassPolicy,
    endurance,
    worst_case_rber,
    refresh_interval_series,
)

__all__ = [
    "FlashChannelModel",
    "RberBreakdown",
    "LifetimePolicy",
    "BaselinePolicy",
    "TunedVpassPolicy",
    "endurance",
    "worst_case_rber",
    "refresh_interval_series",
]
