"""Closed-form expected RBER under wear, retention, and read disturb.

The model integrates, for each MLC state, the programmed-voltage
distribution through:

1. the retention shift (deterministic given the programmed voltage), and
2. the read-disturb drift, whose crossing probabilities are exact because
   drift is monotone in the per-cell susceptibility:
   P[V(n) > Vref] = S(a_required(v0, Vref, n)) with S the susceptibility
   survival function.

The result is the full 4x4 state-misread matrix, converted to a raw bit
error rate through the gray-code bit-distance table.  Pass-through errors
(bitline cutoff from relaxed Vpass) are a separate additive term because
the paper measures them separately (Figure 4 emulates Vpass via Vref and
therefore sees no pass-through errors; Figure 5 measures only the
pass-through term).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import VPASS_NOMINAL
from repro.flash.state import MlcState, STATE_ORDER, bit_errors_between
from repro.physics import constants
from repro.physics.distributions import state_distribution
from repro.physics.pass_through import PassThroughModel
from repro.physics.read_disturb import (
    DEFAULT_READ_DISTURB,
    ReadDisturbModel,
    vpass_exposure_weight,
)
from repro.physics.program import program_error_rber
from repro.physics.retention import leak_quadrature, retained_voltage
from repro.physics.susceptibility import DEFAULT_SUSCEPTIBILITY, SusceptibilityModel

#: bit cost of misreading state i as state j (0, 1, or 2 bit errors).
_BIT_COST = np.array(
    [[bit_errors_between(np.array([i]), np.array([j]))[0] for j in range(4)] for i in range(4)],
    dtype=np.float64,
)


@dataclass(frozen=True)
class RberBreakdown:
    """Decomposition of the expected RBER into its mechanisms."""

    total: float
    baseline: float
    retention: float
    read_disturb: float
    pass_through: float

    def as_dict(self) -> dict[str, float]:
        return {
            "total": self.total,
            "baseline": self.baseline,
            "retention": self.retention,
            "read_disturb": self.read_disturb,
            "pass_through": self.pass_through,
        }


@dataclass
class FlashChannelModel:
    """Analytic expected-RBER model for one flash block.

    Parameters mirror the Monte-Carlo device layer so the two stay
    consistent: the same read references, state distributions,
    susceptibility mixture, and drift constants.
    """

    references: tuple[float, float, float] = constants.READ_REFERENCES
    state_fractions: tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25)
    wordlines_per_block: int = 128
    grid_points: int = 1600
    leak_nodes: int = 9
    susceptibility: SusceptibilityModel = field(default_factory=lambda: DEFAULT_SUSCEPTIBILITY)
    disturb: ReadDisturbModel = field(default_factory=lambda: DEFAULT_READ_DISTURB)

    def __post_init__(self) -> None:
        if abs(sum(self.state_fractions) - 1.0) > 1e-9:
            raise ValueError("state fractions must sum to 1")
        if list(self.references) != sorted(self.references):
            raise ValueError("read references must be increasing")
        if self.leak_nodes < 1:
            raise ValueError("need at least one leak quadrature node")
        self._pass_through = PassThroughModel(
            wordlines_per_block=self.wordlines_per_block,
            state_fractions=self.state_fractions,
        )
        self._leak_nodes, self._leak_weights = leak_quadrature(self.leak_nodes)

    # ------------------------------------------------------------------
    # Core computation
    # ------------------------------------------------------------------

    def _state_grid(self, state: MlcState, pe_cycles: float) -> tuple[np.ndarray, np.ndarray]:
        """Return (midpoints, probability masses) covering the state's
        programmed-voltage distribution, tails included."""
        dist = state_distribution(state, pe_cycles)
        span = 14.0 * dist.sigma + 9.0 * max(dist.scale_low, dist.scale_high)
        lo = dist.mu - span
        hi = min(dist.mu + span, constants.PROGRAM_VERIFY_MAX)
        edges = np.linspace(lo, hi, self.grid_points + 1)
        cdf = dist.cdf(edges)
        masses = np.diff(cdf)
        # Attribute the residual tail mass below the grid to the lowest cell.
        masses[0] += cdf[0]
        mids = 0.5 * (edges[:-1] + edges[1:])
        return mids, masses

    def exposure(self, reads: float, vpass: float = VPASS_NOMINAL) -> float:
        """Vpass-weighted disturb exposure of *reads* read operations."""
        if reads < 0:
            raise ValueError("read count cannot be negative")
        return float(reads) * float(vpass_exposure_weight(vpass))

    def misread_matrix(
        self,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
        disturb_exposure: float = 0.0,
    ) -> np.ndarray:
        """4x4 matrix M[i, j] = P[cell programmed to state i is sensed as j].

        ``disturb_exposure`` is the Vpass-weighted read count received by
        the cell's wordline (see :func:`exposure`).
        """
        matrix = np.zeros((4, 4), dtype=np.float64)
        refs = np.asarray(self.references, dtype=np.float64)
        # Retention heterogeneity: integrate over the per-cell leak factor
        # with Gauss-Hermite quadrature (a single unit node when no time has
        # passed, since leak is then irrelevant).
        if retention_age_seconds > 0.0:
            leaks, weights = self._leak_nodes, self._leak_weights
        else:
            leaks, weights = np.array([1.0]), np.array([1.0])
        for i, state in enumerate(STATE_ORDER):
            v0, mass = self._state_grid(state, pe_cycles)
            sensed_probs = np.zeros((4, v0.size), dtype=np.float64)
            for leak, weight in zip(leaks, weights):
                v_ret = retained_voltage(v0, retention_age_seconds, pe_cycles, leak=leak)
                # P[final voltage above each reference], exact (given leak)
                # via susceptibility survival at the required level.
                above = np.empty((3, v0.size), dtype=np.float64)
                for j, ref in enumerate(refs):
                    a_req = self.disturb.required_susceptibility(
                        v_ret, float(ref), disturb_exposure, pe_cycles
                    )
                    above[j] = self.susceptibility.survival(a_req)
                # Monotonicity guard (references are increasing).
                above = np.minimum.accumulate(above, axis=0)
                sensed_probs[0] += weight * (1.0 - above[0])
                sensed_probs[1] += weight * (above[0] - above[1])
                sensed_probs[2] += weight * (above[1] - above[2])
                sensed_probs[3] += weight * above[2]
            matrix[i] = sensed_probs @ mass
        return matrix

    def rber(
        self,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
        reads: float = 0.0,
        vpass: float = VPASS_NOMINAL,
        include_pass_through: bool = True,
        vpass_emulated_via_vref: bool = False,
    ) -> float:
        """Expected raw bit error rate of a page in the modeled block.

        ``vpass_emulated_via_vref`` reproduces the paper's characterization
        methodology (Section 2): real chips expose no Vpass knob, so the
        authors emulate a changed Vpass through the read-retry Vref.  In
        that mode the disturb reduction is real but no pass-through errors
        can occur.
        """
        exposure = self.exposure(reads, vpass)
        matrix = self.misread_matrix(pe_cycles, retention_age_seconds, exposure)
        fractions = np.asarray(self.state_fractions, dtype=np.float64)
        state_bit_errors = float(fractions @ (matrix * _BIT_COST).sum(axis=1))
        rber = state_bit_errors / 2.0  # two bits per cell
        rber += program_error_rber(pe_cycles)
        if include_pass_through and not vpass_emulated_via_vref:
            rber += self._pass_through.additional_rber(
                vpass, pe_cycles, retention_age_seconds
            )
        return rber

    def rber_at_exposure(
        self,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
        disturb_exposure: float = 0.0,
        pass_through_vpass: float | None = None,
    ) -> float:
        """Expected RBER given an accumulated disturb exposure.

        Lifetime studies accumulate exposure across days with varying Vpass
        (the tuner changes it daily); this entry point takes the exposure
        directly instead of a (reads, vpass) pair.  If
        ``pass_through_vpass`` is given, the pass-through error term for a
        read performed at that Vpass is added.
        """
        matrix = self.misread_matrix(pe_cycles, retention_age_seconds, disturb_exposure)
        fractions = np.asarray(self.state_fractions, dtype=np.float64)
        rber = float(fractions @ (matrix * _BIT_COST).sum(axis=1)) / 2.0
        rber += program_error_rber(pe_cycles)
        if pass_through_vpass is not None:
            rber += self._pass_through.additional_rber(
                pass_through_vpass, pe_cycles, retention_age_seconds
            )
        return rber

    def rber_breakdown(
        self,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
        reads: float = 0.0,
        vpass: float = VPASS_NOMINAL,
    ) -> RberBreakdown:
        """Split the expected RBER into baseline / retention / disturb /
        pass-through contributions (each measured incrementally)."""
        base = self.rber(pe_cycles, 0.0, 0.0, VPASS_NOMINAL, include_pass_through=False)
        with_ret = self.rber(
            pe_cycles, retention_age_seconds, 0.0, VPASS_NOMINAL, include_pass_through=False
        )
        with_rd = self.rber(
            pe_cycles, retention_age_seconds, reads, vpass, include_pass_through=False
        )
        pass_through = self._pass_through.additional_rber(
            vpass, pe_cycles, retention_age_seconds
        )
        return RberBreakdown(
            total=with_rd + pass_through,
            baseline=base,
            retention=with_ret - base,
            read_disturb=with_rd - with_ret,
            pass_through=pass_through,
        )

    def additional_pass_through_rber(
        self,
        vpass: float,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
    ) -> float:
        """Extra RBER from reading at *vpass* (Figure 5's quantity)."""
        return self._pass_through.additional_rber(vpass, pe_cycles, retention_age_seconds)
