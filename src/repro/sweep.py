"""``python -m repro.sweep``: run a scenario sweep from the command line.

Builds a :class:`~repro.workloads.grid.ScenarioGrid` from the flags,
fans it out with :class:`~repro.parallel.SweepRunner`, prints a summary
table, and optionally writes the full merged report as JSON.

Examples::

    # Two suite workloads, 3 seeds each, across 4 worker processes
    python -m repro.sweep --workloads web_0 prxy_0 --seeds 3 --workers 4

    # Full-fidelity physics sweep with an RBER trajectory, saved to JSON
    python -m repro.sweep --workloads webmail --backend flash_chip \\
        --blocks 16 --pages-per-block 32 --overprovision 0.2 \\
        --trajectory --json sweep.json

    # What can I sweep?
    python -m repro.sweep --list-workloads
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.parallel import SweepRunner
from repro.workloads.grid import BackendSpec, GeometrySpec, PolicySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE, suite_grid, workload_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Sharded parallel scenario sweeps over the simulation engine.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument(
        "--workloads", nargs="+", default=["web_0"], metavar="NAME",
        help="suite workload names to sweep (see --list-workloads)",
    )
    parser.add_argument(
        "--list-workloads", action="store_true",
        help="print the workload suite and exit",
    )
    parser.add_argument("--days", type=float, default=1.0, help="trace duration per scenario")
    parser.add_argument("--seeds", type=int, default=1, help="replicas per grid cell")
    parser.add_argument("--root-seed", type=int, default=0, help="root of all derived seeds")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 1 = serial in-process)",
    )
    parser.add_argument(
        "--backend", choices=("counter", "flash_chip"), default="counter",
        help="physics behind the FTL (counter = bookkeeping, flash_chip = Monte-Carlo cells)",
    )
    geometry = parser.add_argument_group("geometry")
    geometry.add_argument("--blocks", type=int, default=256)
    geometry.add_argument("--pages-per-block", type=int, default=256)
    geometry.add_argument("--overprovision", type=float, default=0.07)
    policy = parser.add_argument_group("maintenance policy")
    policy.add_argument("--refresh-days", type=float, default=7.0)
    policy.add_argument(
        "--reclaim", type=int, default=None, metavar="READS",
        help="read-reclaim threshold (reads/interval); omit to disable",
    )
    policy.add_argument("--maintenance-days", type=float, default=1.0)
    physics = parser.add_argument_group("flash-chip backend")
    physics.add_argument("--bitlines", type=int, default=2048)
    physics.add_argument("--pe-cycles", type=int, default=0, help="initial wear")
    parser.add_argument(
        "--trajectory", action="store_true",
        help="record a per-maintenance-window trajectory (incl. worst-block "
        "RBER with the flash_chip backend)",
    )
    parser.add_argument(
        "--serial-check", action="store_true",
        help="also run workers=1 and assert the merged reports are identical",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the full merged report as JSON",
    )
    return parser


def build_grid(args: argparse.Namespace) -> ScenarioGrid:
    """Translate parsed flags into a scenario grid (via the suite adapter)."""
    try:
        return suite_grid(
            args.workloads,
            geometries=(
                GeometrySpec(
                    blocks=args.blocks,
                    pages_per_block=args.pages_per_block,
                    overprovision=args.overprovision,
                ),
            ),
            policies=(
                PolicySpec(
                    name="reclaim" if args.reclaim is not None else "baseline",
                    refresh_interval_days=args.refresh_days,
                    read_reclaim_threshold=args.reclaim,
                    maintenance_period_days=args.maintenance_days,
                ),
            ),
            backends=(
                BackendSpec(
                    kind=args.backend,
                    bitlines_per_block=args.bitlines,
                    initial_pe_cycles=args.pe_cycles,
                ),
            ),
            seeds=args.seeds,
            duration_days=args.days,
            root_seed=args.root_seed,
            record_trajectory=args.trajectory,
        )
    except KeyError as exc:
        # suite_grid already names exactly the unknown workloads.
        raise SystemExit(exc.args[0]) from None


def summary_table(report) -> str:
    """Human-readable digest of a merged report."""
    rows = []
    for result in report:
        stats = result.stats
        backend = result.backend
        rows.append(
            [
                result.scenario_id,
                f"{stats['host_reads']:,}",
                f"{stats['host_writes']:,}",
                f"{stats['write_amplification']:.2f}",
                f"{stats['peak_block_reads_per_interval']:,}",
                backend.get("uncorrectable_pages", "-"),
                backend.get("data_loss_events", "-"),
            ]
        )
    return format_table(
        ["scenario", "reads", "writes", "WA", "peak reads/intvl",
         "uncorrectable", "data loss"],
        rows,
        title=f"Sweep report ({len(report)} scenarios, workers={report.workers})",
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_workloads:
        for name in workload_names():
            print(f"{name:12s} {WORKLOAD_SUITE[name].description}")
        return 0
    grid = build_grid(args)
    runner = SweepRunner(workers=args.workers)
    print(
        f"sweeping {len(grid)} scenarios across {runner.workers} "
        f"worker{'s' if runner.workers != 1 else ''}...",
        flush=True,
    )
    report = runner.run(grid)
    if args.serial_check:
        serial = SweepRunner(workers=1).run(grid)
        if serial.results != report.results:
            raise SystemExit("parallel report diverged from serial execution")
        print("serial check: workers=1 report is identical")
    print(summary_table(report))
    if args.json is not None:
        args.json.write_text(report.to_json() + "\n")
        print(f"full report written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
