"""``python -m repro.sweep``: run a scenario sweep from the command line.

Builds a :class:`~repro.workloads.grid.ScenarioGrid` from the flags,
fans it out with :class:`~repro.parallel.SweepRunner`, prints a summary
table, and optionally writes the full merged report as JSON.

The policy and flash-chip axes are *multi-valued*: pass several values
to ``--reclaim`` / ``--refresh-days`` / ``--pe-cycles`` / ``--vpass``
and the grid expands their cartesian product, so full ablation grids
run from the shell exactly like they do from Python (``--reclaim 0``
means "reclaim disabled" — the baseline row of the paper's ablations).

Examples::

    # Two suite workloads, 3 seeds each, across 4 worker processes
    python -m repro.sweep --workloads web_0 prxy_0 --seeds 3 --workers 4

    # A read-reclaim ablation grid: off / 50k / 100k thresholds
    python -m repro.sweep --workloads webmail --backend flash_chip \\
        --blocks 16 --pages-per-block 32 --overprovision 0.2 \\
        --reclaim 0 50000 100000

    # Full-fidelity physics sweep with an RBER trajectory, saved to
    # JSON, using the intra-scenario threaded block-group executor
    python -m repro.sweep --workloads webmail --backend flash_chip \\
        --blocks 16 --pages-per-block 32 --overprovision 0.2 \\
        --executor threaded --trajectory --json sweep.json

    # A resumable campaign: results persist as they land, a rerun of
    # the same command continues where the previous run stopped
    python -m repro.sweep --workloads web_0 prxy_0 --seeds 8 \\
        --campaign runs/night1 --resume --on-failure retry:2 --timeout 600

    # One shard of a two-host campaign (host 2 runs --shard 1/2);
    # merge the stores afterwards with ResultStore.ingest
    python -m repro.sweep --workloads web_0 prxy_0 --seeds 8 \\
        --campaign runs/host1 --shard 0/2

    # An elastic pool: start the same command on any number of hosts
    # or terminals — workers lease scenario batches dynamically, and a
    # killed worker's lease is reclaimed by the survivors
    python -m repro.sweep --workloads web_0 prxy_0 --seeds 8 \\
        --campaign runs/night1 --resume --elastic --progress 30

    # Live health of any campaign directory (running or not)
    python -m repro.sweep --status runs/night1

    # Fold a finished campaign's records into a checksummed segment
    # (load drops to O(segments) + live tail)
    python -m repro.sweep --compact runs/night1

    # What can I sweep?
    python -m repro.sweep --list-workloads
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

from repro import obs
from repro.analysis.reporting import format_table
from repro.obs.tracing import DETAIL_LEVELS
from repro.parallel import SweepRunner
from repro.units import VPASS_NOMINAL
from repro.workloads.grid import BackendSpec, GeometrySpec, PolicySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE, suite_grid, workload_names


def _shard_argument(text: str) -> str:
    """argparse type for ``--shard``: validate ``i/N`` at parse time.

    Malformed specs (non-integers, ``N <= 0``, ``i >= N``) die here with
    an argparse error naming the flag, instead of surfacing later as a
    raw exception from the campaign layer.
    """
    from repro.parallel import parse_shard

    try:
        parse_shard(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Sharded parallel scenario sweeps over the simulation engine.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument(
        "--workloads", nargs="+", default=["web_0"], metavar="NAME",
        help="suite workload names to sweep (see --list-workloads)",
    )
    parser.add_argument(
        "--list-workloads", action="store_true",
        help="print the workload suite and exit",
    )
    parser.add_argument("--days", type=float, default=1.0, help="trace duration per scenario")
    parser.add_argument("--seeds", type=int, default=1, help="replicas per grid cell")
    parser.add_argument("--root-seed", type=int, default=0, help="root of all derived seeds")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 1 = serial in-process)",
    )
    parser.add_argument(
        "--backend", choices=("counter", "flash_chip"), default="counter",
        help="physics behind the FTL (counter = bookkeeping, flash_chip = Monte-Carlo cells)",
    )
    geometry = parser.add_argument_group("geometry")
    geometry.add_argument("--blocks", type=int, default=256)
    geometry.add_argument("--pages-per-block", type=int, default=256)
    geometry.add_argument("--overprovision", type=float, default=0.07)
    policy = parser.add_argument_group(
        "maintenance policy (multi-valued flags expand the ablation grid)"
    )
    policy.add_argument(
        "--refresh-days", type=float, nargs="+", default=[7.0], metavar="DAYS",
        help="remap-refresh interval(s); several values form a policy axis",
    )
    policy.add_argument(
        "--reclaim", type=int, nargs="+", default=None, metavar="READS",
        help="read-reclaim threshold(s) (reads/interval); 0 = disabled "
        "(the ablation baseline), omit entirely to disable",
    )
    policy.add_argument("--maintenance-days", type=float, default=1.0)
    physics = parser.add_argument_group(
        "flash-chip backend (multi-valued flags expand the backend axis)"
    )
    physics.add_argument("--bitlines", type=int, default=2048)
    physics.add_argument(
        "--pe-cycles", type=int, nargs="+", default=[0], metavar="CYCLES",
        help="initial wear level(s); several values form a backend axis",
    )
    physics.add_argument(
        "--vpass", type=float, nargs="+", default=[VPASS_NOMINAL], metavar="VOLTS",
        help="pass-through voltage(s); several values form a backend axis",
    )
    physics.add_argument(
        "--executor", choices=("serial", "threaded", "process"), default="serial",
        help="intra-scenario block-group executor for flash-chip physics "
        "(bit-identical in every mode; threaded/process default to one "
        "worker per CPU; process needs --workers 1)",
    )
    physics.add_argument(
        "--executor-workers", type=int, default=None, metavar="N",
        help="worker count for --executor threaded/process (default: one per CPU)",
    )
    physics.add_argument(
        "--arena", choices=("shm", "mmap"), default=None,
        help="block-state arena backing (default: heap arrays; the process "
        "executor implies shm)",
    )
    physics.add_argument(
        "--resident-blocks", type=int, default=None, metavar="N",
        help="out-of-core: keep at most N blocks resident (needs --arena mmap)",
    )
    physics.add_argument(
        "--decoder", choices=("threshold", "rs"), nargs="+",
        default=["threshold"], metavar="ENGINE",
        help="ECC engine(s): threshold (capability count) and/or rs (the "
        "GF(256) Reed-Solomon codec); several values form a backend axis",
    )
    physics.add_argument(
        "--rs-code", nargs="+", default=["255,223"], metavar="N,K",
        help="RS code rate(s) as total,data symbols per codeword (applies "
        "to --decoder rs cells; several values form a backend axis)",
    )
    physics.add_argument(
        "--fault-pattern", nargs="+", default=["none"], metavar="SPEC",
        help="structured fault injection axis: none, burst{1|2|4}:RATE, or "
        "scatterN:RATE (e.g. burst2:1e-3); several values form a backend axis",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="record a per-maintenance-window trajectory (incl. worst-block "
        "RBER with the flash_chip backend)",
    )
    campaign = parser.add_argument_group(
        "campaigns (persistent, resumable, fault-tolerant sweeps)"
    )
    campaign.add_argument(
        "--campaign", type=Path, default=None, metavar="DIR",
        help="run as a campaign over a persistent result store at DIR: "
        "results land durably as scenarios finish, each scenario runs in "
        "its own worker process",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="continue an existing campaign store (skip stored scenarios); "
        "without this flag an already-initialized store is an error",
    )
    campaign.add_argument(
        "--on-failure", default="fail_fast", metavar="POLICY",
        help="per-scenario failure policy: fail_fast, continue, or retry:N "
        "(N retries with exponential backoff, then continue)",
    )
    campaign.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-scenario wall-clock timeout; a hung worker is killed and "
        "fed to the failure policy",
    )
    campaign.add_argument(
        "--shard", default=None, metavar="i/N", type=_shard_argument,
        help="run only the scenarios hashing to shard i of N (0-based); "
        "shard stores merge with ResultStore.ingest",
    )
    campaign.add_argument(
        "--elastic", action="store_true",
        help="schedule through the lease ledger instead of a static "
        "shard: start this command on any number of hosts/terminals "
        "over one store; workers claim scenario batches, heartbeat "
        "them, and reclaim batches whose holder died",
    )
    campaign.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="elastic: seconds without a heartbeat before a lease is "
        "reclaimable (default 30)",
    )
    campaign.add_argument(
        "--lease-batch", type=int, default=None, metavar="N",
        help="elastic: scenarios per leased batch (default: auto; the "
        "first worker's plan wins)",
    )
    campaign.add_argument(
        "--worker-name", default=None, metavar="NAME",
        help="elastic: this worker's store-writer/lease-owner name "
        "(default: w-<hostname>-<pid>)",
    )
    campaign.add_argument(
        "--progress", type=float, default=None, metavar="SECONDS",
        help="print a live progress line at least every N seconds while "
        "the campaign runs",
    )
    campaign.add_argument(
        "--status", type=Path, default=None, metavar="DIR",
        help="print live health of the campaign store at DIR (progress, "
        "per-worker leases, failure summary, streaming aggregate) and "
        "exit; derived from store state alone",
    )
    campaign.add_argument(
        "--compact", type=Path, default=None, metavar="DIR",
        help="fold the campaign store's live records into a "
        "checksummed columnar segment and exit (refuses while workers "
        "hold fresh leases)",
    )
    telemetry = parser.add_argument_group(
        "telemetry (repro.obs; strictly out-of-band — results are "
        "bit-identical with tracing on)"
    )
    telemetry.add_argument(
        "--trace", nargs="?", const="auto", default=None, metavar="DIR",
        help="emit span traces as JSONL files under DIR; a bare --trace "
        "defaults to <campaign-or-compact-dir>/trace",
    )
    telemetry.add_argument(
        "--trace-detail", choices=DETAIL_LEVELS, default="coarse",
        help="span volume: coarse (windows, attempts, lease/store ops), "
        "flush (+ physics plan/execute/merge per read flush), block "
        "(+ one span per per-block task)",
    )
    parser.add_argument(
        "--serial-check", action="store_true",
        help="also run workers=1 in-process and assert the merged reports "
        "are identical (for a campaign: every stored result must match "
        "its serially-computed twin bit-for-bit)",
    )
    parser.add_argument(
        "--json", type=Path, nargs="?", const=Path("-"), default=None,
        metavar="PATH",
        help="write the full merged report as JSON ('-' or a bare --json "
        "= stdout); with --status, emit the status document as JSON "
        "instead of the human-readable report",
    )
    return parser


def build_policies(args: argparse.Namespace) -> tuple[PolicySpec, ...]:
    """Expand the policy flags into an axis: refresh x reclaim.

    ``--reclaim 0`` is the "reclaim disabled" baseline cell, so one
    command line sweeps the paper's off/threshold ablation; duplicate
    cells (e.g. ``--reclaim 0 0``) fail the grid's distinct-label check.
    """
    reclaims = [None] if args.reclaim is None else [
        None if threshold == 0 else threshold for threshold in args.reclaim
    ]
    return tuple(
        PolicySpec(
            name="reclaim" if threshold is not None else "baseline",
            refresh_interval_days=refresh_days,
            read_reclaim_threshold=threshold,
            maintenance_period_days=args.maintenance_days,
        )
        for refresh_days in args.refresh_days
        for threshold in reclaims
    )


def _parse_rs_code(code: str) -> tuple[int, int]:
    """Parse one ``--rs-code`` value (``"255,223"``) into ``(n, k)``."""
    try:
        n, k = (int(part) for part in code.split(","))
    except ValueError:
        raise SystemExit(
            f"bad --rs-code {code!r}: expected N,K (e.g. 255,223)"
        ) from None
    return n, k


def build_backends(args: argparse.Namespace) -> tuple[BackendSpec, ...]:
    """Expand the backend flags into an axis:
    pe-cycles x vpass x decoder x rs-code x fault-pattern.

    ``--rs-code`` only multiplies the ``rs`` decoder cells (threshold
    cells have no code rate).  The counter backend ignores every
    flash-chip knob (its label could not distinguish the cells), so it
    only accepts single-valued defaults.
    """
    executor = args.executor
    if args.executor_workers is not None:
        if executor not in ("threaded", "process"):
            raise SystemExit(
                "--executor-workers needs --executor threaded or process"
            )
        executor = f"{executor}:{args.executor_workers}"
    if args.backend == "counter" and (len(args.pe_cycles), len(args.vpass)) != (1, 1):
        raise SystemExit(
            "the counter backend ignores --pe-cycles/--vpass; sweep them "
            "with --backend flash_chip"
        )
    if args.backend == "counter" and (
        args.decoder != ["threshold"] or args.fault_pattern != ["none"]
    ):
        raise SystemExit(
            "the counter backend has no ECC path; sweep --decoder/"
            "--fault-pattern with --backend flash_chip"
        )
    faults = [None if fp == "none" else fp for fp in args.fault_pattern]
    try:
        specs = []
        for pe_cycles in args.pe_cycles:
            for vpass in args.vpass:
                for decoder in args.decoder:
                    codes = (
                        [_parse_rs_code(code) for code in args.rs_code]
                        if decoder == "rs"
                        else [(255, 223)]
                    )
                    for rs_n, rs_k in codes:
                        for fault in faults:
                            specs.append(
                                BackendSpec(
                                    kind=args.backend,
                                    bitlines_per_block=args.bitlines,
                                    initial_pe_cycles=pe_cycles,
                                    vpass=vpass,
                                    executor=executor,
                                    arena=args.arena,
                                    resident_blocks=args.resident_blocks,
                                    decoder=decoder,
                                    rs_n=rs_n,
                                    rs_k=rs_k,
                                    fault_pattern=fault,
                                )
                            )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return tuple(specs)


def build_grid(args: argparse.Namespace) -> ScenarioGrid:
    """Translate parsed flags into a scenario grid (via the suite adapter).

    Multi-valued policy/backend flags expand into full grid axes, so
    ablation grids (reclaim on/off x thresholds, wear levels, Vpass
    relaxation) run from the shell like they do from Python.
    """
    try:
        return suite_grid(
            args.workloads,
            geometries=(
                GeometrySpec(
                    blocks=args.blocks,
                    pages_per_block=args.pages_per_block,
                    overprovision=args.overprovision,
                ),
            ),
            policies=build_policies(args),
            backends=build_backends(args),
            seeds=args.seeds,
            duration_days=args.days,
            root_seed=args.root_seed,
            record_trajectory=args.trajectory,
        )
    except KeyError as exc:
        # suite_grid already names exactly the unknown workloads.
        raise SystemExit(exc.args[0]) from None
    except ValueError as exc:
        # e.g. duplicate axis labels from repeated flag values.
        raise SystemExit(str(exc)) from None


def summary_table(report) -> str:
    """Human-readable digest of a merged report."""
    rows = []
    for result in report:
        stats = result.stats
        backend = result.backend
        rows.append(
            [
                result.scenario_id,
                f"{stats['host_reads']:,}",
                f"{stats['host_writes']:,}",
                f"{stats['write_amplification']:.2f}",
                f"{stats['peak_block_reads_per_interval']:,}",
                backend.get("uncorrectable_pages", "-"),
                backend.get("data_loss_events", "-"),
            ]
        )
    return format_table(
        ["scenario", "reads", "writes", "WA", "peak reads/intvl",
         "uncorrectable", "data loss"],
        rows,
        title=f"Sweep report ({len(report)} scenarios, workers={report.workers})",
    )


def serial_check(grid, report) -> None:
    """Recompute the report's scenarios serially and demand bit-identity.

    For a partial report (a shard, or permanent failures under
    ``continue``) the comparison covers the scenarios the report holds;
    for a complete campaign or sweep that is the whole grid.
    """
    covered = set(report.scenario_ids)
    scenarios = [s for s in grid if s.scenario_id in covered]
    serial = SweepRunner(workers=1).run(scenarios)
    if serial.results != report.results:
        raise SystemExit("report diverged from serial execution")
    print(
        f"serial check: {len(scenarios)} scenario(s) identical to the "
        f"workers=1 in-process reference"
    )


def _progress_line(snapshot: dict, elapsed: float | None = None) -> str:
    """One live progress line from a streaming-aggregate snapshot."""
    rber = snapshot.get("worst_block_rber") or {}
    rber_text = (
        f", worst-RBER p99 {rber['p99']:.2e}" if rber.get("p99") is not None
        else ""
    )
    stamp = f" +{elapsed:.1f}s" if elapsed is not None else ""
    return (
        f"progress{stamp}: {snapshot['completed']} completed, "
        f"{snapshot['failed_attempts']} failed attempt(s), "
        f"{snapshot['uncorrectable_pages']} uncorrectable page(s)"
        f"{rber_text}"
    )


class ProgressWriter:
    """Serialized writer for ``--progress`` lines.

    ``--progress`` output used to go through bare ``print`` calls,
    which interleave with worker stdout mid-line under load (stdout is
    block-buffered when piped).  Every line now goes through one
    lock-held ``write()`` of a complete line followed by a flush, and
    carries a monotonic ``+<seconds>s`` field measured from writer
    construction — wall-clock steps cannot reorder or alias the stamps.
    """

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stdout
        self._start = time.monotonic()
        self._lock = threading.Lock()

    def emit(self, snapshot: dict) -> None:
        line = _progress_line(
            snapshot, elapsed=time.monotonic() - self._start
        )
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


def render_status(status: dict) -> str:
    """Human-readable campaign health (see ``--status``)."""
    lines = []
    total = status["scenario_count"]
    done = status["completed"]
    pct = f" ({100.0 * done / total:.1f}%)" if total else ""
    lines.append(f"campaign store {status['root']}")
    lines.append(f"  progress: {done}/{total} scenario(s){pct}")
    store = status["store"]
    lines.append(
        f"  store: {store['segments']} segment(s) holding "
        f"{store['segment_records']} record(s), {store['live_files']} live "
        f"file(s)"
    )
    if status["corrupt_records"]:
        lines.append(
            f"  corrupt records skipped: {status['corrupt_records']} "
            f"(affected scenarios re-run on resume)"
        )
    if status["zombie_writes"]:
        lines.append(
            f"  zombie writes detected: {status['zombie_writes']} "
            f"scenario(s) recorded under more than one lease token "
            f"(payloads agree; harmless)"
        )
    failures = status["failures"]
    if failures["total"]:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(failures["kinds"].items())
        )
        lines.append(f"  failed attempts: {failures['total']} ({kinds})")
    else:
        lines.append("  failed attempts: 0")
    if status["leases"]:
        lines.append("  leases:")
        for lease in status["leases"]:
            if lease["done"]:
                detail = "done"
            elif lease["owner"] is None:
                detail = "unclaimed"
            else:
                age = lease["heartbeat_age_seconds"]
                mark = " STALE" if lease["stale"] else ""
                detail = (
                    f"held by {lease['owner']} (token {lease['token']}, "
                    f"heartbeat {age:.1f}s ago{mark})"
                )
            lines.append(f"    {lease['batch']}: {detail}")
    aggregate = status["aggregate"]
    rber = aggregate.get("worst_block_rber")
    if rber:
        lines.append(
            f"  worst-block RBER: p50 {rber['p50']:.3e}  "
            f"p99 {rber['p99']:.3e}  max {rber['max']:.3e}  (n={rber['n']})"
        )
    lines.append(
        f"  uncorrectable pages: {aggregate['uncorrectable_pages']}, "
        f"data-loss events: {aggregate['data_loss_events']}"
    )
    return "\n".join(lines)


#: schema identity of the ``--status --json`` document.
STATUS_FORMAT = "repro-campaign-status"
STATUS_VERSION = 1


def run_status_cli(args: argparse.Namespace) -> int:
    from repro.parallel import campaign_status

    try:
        status = campaign_status(args.status)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.json is not None:
        # One stable machine-readable document (the dashboard surface):
        # schema-versioned, sorted keys, everything campaign_status
        # derives from the durable store/lease artifacts.
        doc = json.dumps(
            {"format": STATUS_FORMAT, "version": STATUS_VERSION, **status},
            indent=2,
            sort_keys=True,
        )
        if str(args.json) == "-":
            print(doc)
        else:
            args.json.write_text(doc + "\n")
            print(f"status written to {args.json}")
        return 0
    print(render_status(status))
    return 0


def _resolve_trace_dir(args: argparse.Namespace) -> Path | None:
    """Where ``--trace`` writes, or ``None`` when tracing is off.

    A bare ``--trace`` means "into the campaign/compact directory" —
    the one place every elastic worker of a campaign can agree on.
    """
    if args.trace is None:
        return None
    if args.trace != "auto":
        return Path(args.trace)
    base = args.campaign if args.campaign is not None else args.compact
    if base is None:
        raise SystemExit(
            "a bare --trace needs --campaign DIR or --compact DIR to "
            "anchor the trace directory; pass --trace DIR explicitly "
            "for a plain sweep"
        )
    return Path(base) / "trace"


def run_compact_cli(args: argparse.Namespace) -> int:
    from repro.parallel.store import ResultStore

    trace_dir = _resolve_trace_dir(args)
    if trace_dir is not None:
        obs.configure(trace_dir, label="compact", detail=args.trace_detail)
    store = ResultStore(args.compact)
    if store.read_manifest() is None:
        raise SystemExit(f"{args.compact} is not an initialized campaign store")
    try:
        summary = store.compact()
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if summary is None:
        print("nothing to compact: no live records")
    else:
        print(
            f"compacted {summary['records']} record(s) from "
            f"{summary['folded_files']} live file(s) into "
            f"{summary['segment']}"
        )
    return 0


def run_campaign_cli(args: argparse.Namespace, grid: ScenarioGrid):
    """The ``--campaign`` execution path: resumable, durable, elastic."""
    from repro.parallel import Campaign, ScenarioFailure
    from repro.parallel.store import ResultStore

    if ResultStore.is_initialized(args.campaign) and not (
        args.resume or args.elastic
    ):
        # Elastic workers share one store by design: every worker after
        # the first finds it initialized, so --elastic implies --resume.
        raise SystemExit(
            f"campaign store {args.campaign} is already initialized; pass "
            f"--resume to continue it, or choose a fresh directory"
        )
    try:
        campaign = Campaign(
            grid,
            str(args.campaign),
            workers=args.workers,
            on_failure=args.on_failure,
            timeout=args.timeout,
            shard=args.shard,
            elastic=args.elastic,
            lease_ttl=(
                args.lease_ttl if args.lease_ttl is not None else 30.0
            ),
            lease_batch=args.lease_batch,
            worker_name=args.worker_name,
            progress_interval=args.progress,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    trace_dir = _resolve_trace_dir(args)
    if trace_dir is not None:
        # The campaign's worker name is the deterministic trace label
        # (elastic workers each get their own file in the shared dir).
        obs.configure(
            trace_dir, label=campaign.worker_name, detail=args.trace_detail
        )
    if args.elastic:
        scope = f" (elastic worker {campaign.worker_name})"
    elif args.shard:
        scope = f" (shard {args.shard})"
    else:
        scope = ""
    print(
        f"campaign over {len(grid)} scenario(s){scope}, up to "
        f"{campaign.workers} in flight, store {args.campaign}...",
        flush=True,
    )
    progress = None
    if args.progress is not None:
        progress = ProgressWriter().emit
    try:
        report = campaign.run(progress=progress)
    except ScenarioFailure as exc:
        raise SystemExit(f"campaign aborted (fail_fast): {exc}") from None
    except ValueError as exc:
        # e.g. a grid-fingerprint mismatch against the stored manifest,
        # or the nested process-pool budget guard.
        raise SystemExit(str(exc)) from None
    if campaign.resumed:
        print(f"resumed: {campaign.resumed} scenario(s) already stored")
    if campaign.fenced_batches:
        print(
            f"fenced off {campaign.fenced_batches} batch(es) (lease "
            f"reclaimed by another worker; no work lost)"
        )
    if campaign.ledger:
        print(f"failed attempts this run: {len(campaign.ledger)}")
    for failure in campaign.failed:
        print(
            f"  FAILED {failure['scenario_id']} "
            f"(attempt {failure['attempt']}, {failure['kind']})"
        )
    return report, campaign


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_workloads:
        for name in workload_names():
            print(f"{name:12s} {WORKLOAD_SUITE[name].description}")
        return 0
    if args.status is not None:
        return run_status_cli(args)
    if args.compact is not None:
        return run_compact_cli(args)
    if args.resume and args.campaign is None:
        raise SystemExit("--resume needs --campaign DIR")
    if args.shard is not None and args.campaign is None:
        raise SystemExit("--shard needs --campaign DIR (shards merge stores)")
    if args.elastic and args.campaign is None:
        raise SystemExit("--elastic needs --campaign DIR (the shared store)")
    if args.elastic and args.shard is not None:
        raise SystemExit(
            "--elastic and --shard are mutually exclusive: leases "
            "partition the grid dynamically"
        )
    grid = build_grid(args)
    if args.campaign is not None:
        report, campaign = run_campaign_cli(args, grid)
        if args.serial_check:
            serial_check(grid, report)
    else:
        trace_dir = _resolve_trace_dir(args)
        if trace_dir is not None:
            obs.configure(trace_dir, label="sweep", detail=args.trace_detail)
        runner = SweepRunner(workers=args.workers)
        print(
            f"sweeping {len(grid)} scenarios across {runner.workers} "
            f"worker{'s' if runner.workers != 1 else ''}...",
            flush=True,
        )
        try:
            report = runner.run(grid)
        except ValueError as exc:
            # e.g. the runner's nested process-pool budget guard.
            raise SystemExit(str(exc)) from None
        if args.serial_check:
            serial_check(grid, report)
    print(summary_table(report))
    if args.json is not None:
        if str(args.json) == "-":
            print(report.to_json())
        else:
            args.json.write_text(report.to_json() + "\n")
            print(f"full report written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
