"""Span tracing: nested timed spans as crash-tolerant JSONL.

One :class:`Tracer` writes one append-only ``trace-<label>.jsonl`` file
in the trace directory.  Every process that participates in a run —
the campaign parent, each per-scenario worker, forked sweep workers —
gets its own file (a writer never shares a file handle across a fork),
and the per-file span **ids** are what stitch the files back together:
``merge_spans`` unions a directory's files into one id-keyed span set,
and cross-file parent links (a worker's root span pointing at the
parent process's attempt span) reconstruct the full tree.

**File format** (schema-versioned, one JSON object per line):

- line 1 — header: ``{"k": "header", "format": "repro-trace",
  "version": 1, "label": ..., "pid": ..., "wall_start": ...,
  "detail": ...}``
- span begin: ``{"k": "b", "id": ..., "parent": ..., "name": ...,
  "t0": ..., "attrs": {...}}``
- span end: ``{"k": "e", "id": ..., "t1": ..., "attrs": {...}}``
- or a complete span in one line (concurrently scheduled tasks):
  ``{"k": "span", "id": ..., "parent": ..., "name": ..., "t0": ...,
  "t1": ..., "attrs": {...}}``

``t0``/``t1`` are monotonic-clock seconds — comparable within a file,
not across files.  Spans are written as **begin/end event pairs** (not
one line at end) deliberately: a parent's begin line always precedes
its children's lines, so parent links resolve even in the trace of a
worker that was SIGKILL'd mid-span — the unmatched begins load as
*open* spans (``t1 is None``) instead of vanishing.

**Crash tolerance** mirrors the result store's records: every event is
a single line-buffered ``write()`` of a full line, so a SIGKILL can
tear at most the trailing line, and :func:`load_trace_file` skips any
line that fails to parse — a dead worker's trace still loads.

**Determinism of ids.**  Span ids are ``<label>:<seq>`` with a
per-tracer monotonic sequence number — under deterministic control
flow (everything in this repo) the ids are stable across runs, which
is what lets two runs' merged traces be compared structurally.  Spans
recorded from *concurrently scheduled* work (per-block executor tasks)
must not consume the shared sequence — thread interleaving would make
it racy — so they use parent-derived ids instead
(:meth:`Tracer.child_id`, e.g. ``wA.web_0-…-s0.a1:000007/b12``) via
:meth:`Tracer.record`, which allocates nothing.

**Detail levels** gate span volume: ``coarse`` (default — windows,
scenarios, attempts, lease ops, store ops), ``flush`` (adds the
plan/execute/merge phases of every physics read flush), ``block``
(adds one span per per-block sense+decode task).

**Out-of-band contract.**  Nothing here feeds RNG streams, scenario
ids, or result payloads; a tracer failing to write must never fail the
run (writes raise only on programmer error, not on I/O — see
``_emit``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "DETAIL_LEVELS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "trace_file_paths",
    "load_trace_file",
    "load_trace_dir",
    "merge_spans",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: coarse < flush < block; each level includes the previous ones.
DETAIL_LEVELS = ("coarse", "flush", "block")


class Span:
    """One in-flight span; becomes a JSONL line when ended."""

    __slots__ = ("id", "parent", "name", "t0", "attrs")

    def __init__(self, span_id: str, parent: str | None, name: str,
                 t0: float, attrs: dict):
        self.id = span_id
        self.parent = parent
        self.name = name
        self.t0 = t0
        self.attrs = attrs

    def __repr__(self) -> str:
        return f"Span(id={self.id!r}, name={self.name!r})"


class _SpanContext:
    """Context-manager shim for ``with tracer.span(...)``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._tracer.end(self._span, error=exc_type.__name__)
        else:
            self._tracer.end(self._span)
        return False


class Tracer:
    """Emit spans for one process into ``<directory>/trace-<label>.jsonl``.

    Parameters
    ----------
    directory:
        The trace directory (created on first write).  For a campaign
        this is ``<campaign>/trace``; every participating process
        writes its own file here.
    label:
        This writer's logical name — it prefixes every span id, so it
        must be unique among the run's writers *and* stable across
        runs for ids to be comparable (campaign workers use
        ``<worker>.<scenario>.a<attempt>``, not a pid).
    detail:
        One of :data:`DETAIL_LEVELS`.
    """

    enabled = True

    def __init__(self, directory: str | os.PathLike, label: str,
                 detail: str = "coarse"):
        if detail not in DETAIL_LEVELS:
            raise ValueError(
                f"unknown trace detail {detail!r}; expected one of "
                f"{DETAIL_LEVELS}"
            )
        self.directory = Path(directory)
        self.label = str(label)
        self.detail = detail
        self._level = DETAIL_LEVELS.index(detail)
        self._seq = 0
        self._pid = os.getpid()
        self._handle = None
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # ------------------------------------------------------------------
    # Detail gates (cheap booleans for hot call sites)
    # ------------------------------------------------------------------

    @property
    def detail_flush(self) -> bool:
        return self._level >= 1

    @property
    def detail_block(self) -> bool:
        return self._level >= 2

    # ------------------------------------------------------------------
    # File lifecycle
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self.directory / f"trace-{self.label}.jsonl"

    def _ensure_open(self):
        """Open (or fork-reopen) this writer's file, header first.

        A forked child inherits the tracer object but must never share
        the parent's file handle or id space: on the first write after
        a pid change the tracer re-labels itself ``<label>-p<pid>``,
        resets its sequence, and opens a fresh file.  (Campaign
        scenario workers avoid the pid suffix entirely by re-binding a
        deterministic label first — see :func:`repro.obs.rebind`.)
        """
        pid = os.getpid()
        if self._handle is not None and pid == self._pid:
            return self._handle
        if self._handle is not None:
            # Forked: abandon the inherited handle (never close it —
            # the parent owns the fd's flush semantics).  The thread's
            # inherited span stack is kept: spans the parent opened are
            # this child's natural implicit parents (their begin lines
            # live in the parent's file; only the parent ends them).
            self._handle = None
            self.label = f"{self.label}-p{pid}"
            self._seq = 0
            self._lock = threading.Lock()
        self._pid = pid
        self.directory.mkdir(parents=True, exist_ok=True)
        # Line-buffered append: each span is one write() of one line,
        # so a SIGKILL tears at most the trailing line.
        self._handle = open(self.path, "a", buffering=1)
        self._emit({
            "k": "header",
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "label": self.label,
            "pid": pid,
            "wall_start": time.time(),
            "detail": self.detail,
        })
        return self._handle

    def _emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        handle = self._handle
        handle.write(line + "\n")

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    # ------------------------------------------------------------------
    # Span API
    # ------------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._stacks, "spans", None)
        if stack is None:
            stack = self._stacks.spans = []
        return stack

    def current_id(self) -> str | None:
        """Id of this thread's innermost open span (implicit parent)."""
        stack = self._stack()
        return stack[-1].id if stack else None

    def begin(self, name: str, *, parent: str | None = None,
              span_id: str | None = None, detached: bool = False,
              **attrs) -> Span:
        """Open a span; pair with :meth:`end` (or use :meth:`span`).

        The parent defaults to this thread's innermost open span.
        *detached* spans are not pushed on the thread's stack — use it
        for spans that overlap arbitrarily (e.g. concurrent campaign
        attempts held open by the scheduler) with an explicit *parent*.
        *span_id* overrides the allocated ``<label>:<seq>`` id (for
        parent-derived ids in concurrently scheduled work).
        """
        if parent is None:
            parent = self.current_id()
        t0 = time.monotonic()
        with self._lock:
            self._ensure_open()
            if span_id is None:
                span_id = f"{self.label}:{self._seq:06d}"
                self._seq += 1
            record = {"k": "b", "id": span_id, "parent": parent,
                      "name": name, "t0": t0}
            if attrs:
                record["attrs"] = dict(attrs)
            self._emit(record)
        span = Span(span_id, parent, name, t0, dict(attrs))
        if not detached:
            self._stack().append(span)
        return span

    def end(self, span: Span, **attrs) -> None:
        """Close *span* and write its end line; out-of-order ends are
        fine (the stack removal tolerates overlap)."""
        t1 = time.monotonic()
        stack = self._stack()
        if span in stack:
            stack.remove(span)
        record = {"k": "e", "id": span.id, "t1": t1}
        if attrs:
            record["attrs"] = attrs
        with self._lock:
            self._ensure_open()
            self._emit(record)

    def span(self, name: str, **attrs) -> _SpanContext:
        """``with tracer.span("engine.window", window=3): ...``"""
        return _SpanContext(self, self.begin(name, **attrs))

    def record(self, name: str, t0: float, t1: float, *, span_id: str,
               parent: str | None = None, **attrs) -> None:
        """Write one already-timed span directly (no stack, no sequence).

        The thread-safe path for concurrently scheduled work: the
        caller supplies a parent-derived *span_id*
        (:meth:`child_id`), so no shared counter is consumed and
        thread interleaving cannot change any id.
        """
        record = {
            "k": "span",
            "id": span_id,
            "parent": parent,
            "name": name,
            "t0": t0,
            "t1": t1,
        }
        if attrs:
            record["attrs"] = attrs
        with self._lock:
            self._ensure_open()
            self._emit(record)

    @staticmethod
    def child_id(parent_id: str, suffix: str) -> str:
        """Deterministic id for a concurrently scheduled child span."""
        return f"{parent_id}/{suffix}"

    def __repr__(self) -> str:
        return f"Tracer(label={self.label!r}, detail={self.detail!r})"


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """The disabled tracer: every operation is a shared-singleton no-op."""

    enabled = False
    detail = "coarse"
    detail_flush = False
    detail_block = False
    label = ""

    def begin(self, name: str, **kwargs) -> Span:
        return NULL_SPAN

    def end(self, span: Span, **attrs) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_CONTEXT

    def record(self, *args, **kwargs) -> None:
        pass

    @staticmethod
    def child_id(parent_id: str, suffix: str) -> str:
        return ""

    def current_id(self) -> None:
        return None

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_SPAN = Span("", None, "", 0.0, {})
NULL_TRACER = NullTracer()
_NULL_CONTEXT = _NullSpanContext()


# ----------------------------------------------------------------------
# Loading and merging
# ----------------------------------------------------------------------


def trace_file_paths(directory: str | os.PathLike) -> list[Path]:
    """Every trace file in *directory*, sorted by filename."""
    return sorted(Path(directory).glob("trace-*.jsonl"))


def load_trace_file(path: str | os.PathLike) -> dict:
    """Parse one trace file, skipping torn/corrupt lines.

    Returns ``{"path", "header", "spans", "skipped"}``; *header* is
    ``None`` when even the header line is unreadable (the file is then
    just an empty span source, like a store file that is all torn
    tail).  Begin/end event pairs are matched by id; a begin without an
    end — the worker died mid-span — loads as an *open* span with
    ``t1 is None`` and ``"open": True``.  An end without a begin (a
    fork child ending a span its parent opened) is dropped.  Raises
    only on an unreadable file, never on content.
    """
    path = Path(path)
    header = None
    spans: list[dict] = []
    by_id: dict[str, dict] = {}
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kind = record["k"]
            except (json.JSONDecodeError, TypeError, KeyError):
                skipped += 1  # torn tail or corruption — skip, like the store
                continue
            try:
                if kind == "header":
                    if (
                        record.get("format") == TRACE_FORMAT
                        and record.get("version") == TRACE_VERSION
                        and header is None
                    ):
                        header = record
                    else:
                        skipped += 1
                elif kind == "b":
                    span = {
                        "id": str(record["id"]),
                        "parent": record.get("parent"),
                        "name": str(record["name"]),
                        "t0": float(record["t0"]),
                        "t1": None,
                        "open": True,
                        "attrs": record.get("attrs") or {},
                        "file": path.name,
                    }
                    spans.append(span)
                    by_id[span["id"]] = span
                elif kind == "e":
                    span = by_id.get(str(record["id"]))
                    if span is None:
                        skipped += 1  # fork child closed a parent's span
                    else:
                        span["t1"] = float(record["t1"])
                        span["open"] = False
                        span["attrs"].update(record.get("attrs") or {})
                elif kind == "span":
                    spans.append({
                        "id": str(record["id"]),
                        "parent": record.get("parent"),
                        "name": str(record["name"]),
                        "t0": float(record["t0"]),
                        "t1": float(record["t1"]),
                        "open": False,
                        "attrs": record.get("attrs") or {},
                        "file": path.name,
                    })
                else:
                    skipped += 1
            except (KeyError, TypeError, ValueError):
                skipped += 1
    return {"path": path, "header": header, "spans": spans,
            "skipped": skipped}


def load_trace_dir(directory: str | os.PathLike) -> list[dict]:
    """Load every trace file of *directory* (sorted by filename)."""
    return [load_trace_file(path) for path in trace_file_paths(directory)]


def merge_spans(directory: str | os.PathLike) -> list[dict]:
    """Union a trace directory's spans into one id-sorted list.

    Duplicate ids across files raise — per-writer files and
    deterministic labels make ids globally unique by construction, so
    a collision means two writers shared a label (a bug worth
    surfacing, not folding away).
    """
    merged: dict[str, dict] = {}
    for loaded in load_trace_dir(directory):
        for span in loaded["spans"]:
            previous = merged.get(span["id"])
            if previous is not None and previous["file"] != span["file"]:
                raise ValueError(
                    f"span id {span['id']!r} appears in both "
                    f"{previous['file']} and {span['file']}"
                )
            merged[span["id"]] = span
    return [merged[span_id] for span_id in sorted(merged)]
