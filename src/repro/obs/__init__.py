"""``repro.obs``: the unified telemetry layer (tracing + metrics + export).

Zero-dependency observability for the whole stack — the engine's
windows, the flash backend's plan/execute/merge flushes, the three
block-group executors, the sweep runner, and the campaign layer's
attempts/leases/store all report here.  Three pieces:

- :mod:`repro.obs.metrics` — a process-local registry of counters/
  gauges/histograms with shared no-op handles when disabled;
- :mod:`repro.obs.tracing` — nested timed spans emitted as
  crash-tolerant, schema-versioned JSONL, one file per participating
  process, merged by deterministic span ids;
- :mod:`repro.obs.export` — post-hoc machine-readable snapshots
  (``metrics.json`` + a Prometheus-style textfile) rendered from
  store + lease + trace state alone.

**The out-of-band contract.**  Telemetry observes the run; it never
participates.  Nothing in this package feeds an RNG stream, a scenario
id, a seed derivation, or a result payload — so every equivalence
suite (serial vs. threaded vs. process executors, ``workers=1`` vs.
``workers=N``, resumed vs. uninterrupted campaigns) passes bit-for-bit
with tracing on, and the disabled path is cheap enough that the
flash-chip bench gates it at <2% (``telemetry_overhead_ratio`` in
``BENCH_physics.json``).

**Process model.**  State is module-global and per-process:
:func:`configure` arms it (usually from the CLI's ``--trace``), forked
workers inherit it, and each worker that wants a deterministic
identity calls :func:`rebind` with its logical label (campaign
scenario workers do; anonymous forked sweep workers fall back to the
tracer's pid-suffix fork safety).  ``REPRO_TRACE_DIR`` /
``REPRO_TRACE_DETAIL`` carry the configuration to spawn-start workers
that share no memory (:func:`configure_from_env`).
"""

from __future__ import annotations

import os

from repro.obs.metrics import (
    MetricsRegistry,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
)
from repro.obs.tracing import (
    DETAIL_LEVELS,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_trace_dir,
    load_trace_file,
    merge_spans,
    trace_file_paths,
)

__all__ = [
    "ENV_TRACE_DIR",
    "ENV_TRACE_DETAIL",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "configure",
    "configure_from_env",
    "counter",
    "gauge",
    "histogram",
    "is_tracing",
    "rebind",
    "registry",
    "reset",
    "tracer",
    "load_trace_dir",
    "load_trace_file",
    "merge_spans",
    "trace_file_paths",
]

#: environment carriers of the trace configuration (for workers that
#: do not inherit this process's memory).
ENV_TRACE_DIR = "REPRO_TRACE_DIR"
ENV_TRACE_DETAIL = "REPRO_TRACE_DETAIL"

_registry = MetricsRegistry(enabled=False)
_tracer: Tracer | NullTracer = NULL_TRACER


def registry() -> MetricsRegistry:
    """The process's metrics registry (disabled until :func:`configure`)."""
    return _registry


def counter(name: str):
    """Shorthand: ``registry().counter(name)``."""
    return _registry.counter(name)


def gauge(name: str):
    return _registry.gauge(name)


def histogram(name: str):
    return _registry.histogram(name)


def tracer() -> Tracer | NullTracer:
    """The process's tracer (the shared no-op until :func:`configure`)."""
    return _tracer


def is_tracing() -> bool:
    return _tracer.enabled


def configure(
    trace_dir: str | os.PathLike | None,
    *,
    label: str | None = None,
    detail: str = "coarse",
    metrics: bool | None = None,
    propagate: bool = True,
) -> None:
    """Arm (or with ``trace_dir=None`` disarm) telemetry in this process.

    *label* defaults to ``p<pid>`` — deterministic callers (the
    campaign CLI) pass their worker name instead.  *metrics* defaults
    to "enabled iff tracing is" — pass ``metrics=True`` with
    ``trace_dir=None`` for a registry without span files.  *propagate*
    exports the configuration via :data:`ENV_TRACE_DIR` /
    :data:`ENV_TRACE_DETAIL` so spawn-start workers can pick it up
    with :func:`configure_from_env`.
    """
    global _registry, _tracer
    _tracer.close()
    if trace_dir is None:
        _tracer = NULL_TRACER
        if propagate:
            os.environ.pop(ENV_TRACE_DIR, None)
            os.environ.pop(ENV_TRACE_DETAIL, None)
    else:
        _tracer = Tracer(
            trace_dir,
            label if label is not None else f"p{os.getpid()}",
            detail=detail,
        )
        if propagate:
            os.environ[ENV_TRACE_DIR] = str(trace_dir)
            os.environ[ENV_TRACE_DETAIL] = detail
    enabled = bool(trace_dir is not None if metrics is None else metrics)
    _registry = MetricsRegistry(enabled=enabled)


def configure_from_env(label: str | None = None) -> bool:
    """Arm telemetry from the environment carriers, if set.

    The entry hook for workers that share no memory with the
    configuring process.  Returns whether tracing is armed after the
    call; already-armed processes are left untouched (fork-start
    workers inherit live state, which wins over the env)."""
    if _tracer.enabled:
        return True
    directory = os.environ.get(ENV_TRACE_DIR)
    if not directory:
        return False
    configure(
        directory,
        label=label,
        detail=os.environ.get(ENV_TRACE_DETAIL, "coarse"),
        propagate=False,
    )
    return True


def rebind(label: str) -> None:
    """Give this process's tracer a fresh deterministic identity.

    Called by workers that inherited a configured tracer (fork) or
    found one in the env (spawn) and know their logical name — e.g. a
    campaign scenario worker's ``<worker>.<scenario>.a<attempt>``.
    The new tracer starts a fresh file and id sequence, so span ids
    are stable across runs regardless of pids or scheduling."""
    global _tracer
    if not _tracer.enabled:
        return
    old = _tracer
    _tracer = Tracer(old.directory, label, detail=old.detail)
    # Never close the inherited handle: after a fork it is the
    # parent's fd.  The old tracer object is simply dropped.


def reset() -> None:
    """Disarm telemetry and drop all state (test isolation hook)."""
    configure(None)
