"""Process-local metrics registry: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the
other).  It is deliberately primitive — plain Python objects, no
background threads, no sockets, no dependencies — because its job is to
*count* out-of-band, never to participate in the simulation:

- **Counters** only go up (``engine.windows``,
  ``ecc.rs.miscorrections``, ``campaign.lease.renewals``,
  ``arena.evictions``).
- **Gauges** hold the latest value (``campaign.inflight``).
- **Histograms** fold observations into count/total/min/max
  (``physics.decode_pages.seconds``) — enough for rates and means
  without keeping samples.

**The disabled path is a no-op, not a cheap op.**  A disabled registry
hands out shared no-op singletons whose ``inc``/``set``/``observe`` do
nothing and allocate nothing, so instrumented hot paths cost one
attribute call when telemetry is off (the <2% bench gate in
``tools/check_bench.py`` holds the line).  Handles may be fetched once
and kept: they stay valid for the registry's lifetime.

Naming scheme: dotted, lowercase, ``<subsystem>.<thing>[.<unit>]`` —
e.g. ``physics.decode_pages.seconds``.  The Prometheus rendering
(:meth:`MetricsRegistry.render_prometheus`) maps dots to underscores
under a ``repro_`` prefix.
"""

from __future__ import annotations

import re

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """The most recent value of a quantity."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Streaming count/total/min/max of observations."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
        }


class _NoopCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NoopGauge:
    __slots__ = ()
    value = 0

    def set(self, value: int | float) -> None:
        pass


class _NoopHistogram:
    __slots__ = ()
    count = 0
    total = 0.0
    min = None
    max = None

    def observe(self, value: int | float) -> None:
        pass

    def summary(self) -> dict:
        return {"count": 0, "total": 0.0, "min": None, "max": None,
                "mean": None}


#: the shared handles a disabled registry returns — one instance each,
#: so "telemetry off" allocates nothing per call site.
NOOP_COUNTER = _NoopCounter()
NOOP_GAUGE = _NoopGauge()
NOOP_HISTOGRAM = _NoopHistogram()


def prometheus_name(name: str) -> str:
    """Map a dotted metric name to its Prometheus series name."""
    return "repro_" + name.replace(".", "_")


class MetricsRegistry:
    """Create-or-fetch named metric handles; snapshot and render them.

    A name is bound to one kind forever — asking for
    ``counter("engine.windows")`` after ``gauge("engine.windows")``
    raises, so two call sites cannot silently split a series.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------

    def _check_name(self, name: str, table: dict) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"bad metric name {name!r}: want dotted lowercase like "
                f"'physics.decode_pages.seconds'"
            )
        for other in (self._counters, self._gauges, self._histograms):
            if other is not table and name in other:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter | _NoopCounter:
        if not self.enabled:
            return NOOP_COUNTER
        handle = self._counters.get(name)
        if handle is None:
            self._check_name(name, self._counters)
            handle = self._counters[name] = Counter()
        return handle

    def gauge(self, name: str) -> Gauge | _NoopGauge:
        if not self.enabled:
            return NOOP_GAUGE
        handle = self._gauges.get(name)
        if handle is None:
            self._check_name(name, self._gauges)
            handle = self._gauges[name] = Gauge()
        return handle

    def histogram(self, name: str) -> Histogram | _NoopHistogram:
        if not self.enabled:
            return NOOP_HISTOGRAM
        handle = self._histograms.get(name)
        if handle is None:
            self._check_name(name, self._histograms)
            handle = self._histograms[name] = Histogram()
        return handle

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready dump of every registered series."""
        return {
            "counters": {
                name: handle.value
                for name, handle in sorted(self._counters.items())
            },
            "gauges": {
                name: handle.value
                for name, handle in sorted(self._gauges.items())
            },
            "histograms": {
                name: handle.summary()
                for name, handle in sorted(self._histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the registry's current state."""
        return render_prometheus(self.snapshot())


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot`-shaped dict as a
    Prometheus-style textfile (also used by :mod:`repro.obs.export` for
    post-hoc snapshots built from store/trace state)."""
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        series = prometheus_name(name)
        lines.append(f"# TYPE {series}_total counter")
        lines.append(f"{series}_total {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        series = prometheus_name(name)
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {value}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        series = prometheus_name(name)
        lines.append(f"# TYPE {series} summary")
        lines.append(f"{series}_count {summary['count']}")
        lines.append(f"{series}_sum {summary['total']}")
    return "\n".join(lines) + "\n"
