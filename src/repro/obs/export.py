"""Post-hoc telemetry snapshots: ``metrics.json`` + Prometheus textfile.

``python -m repro.obs.export <campaign-dir>`` renders a
machine-readable snapshot of a campaign directory from its durable
artifacts alone — the result store (records, segments, failure
ledger), the lease ledger, and any trace files under
``<campaign>/trace`` — so it works identically on a running, crashed,
or finished campaign, with no connection to any worker.

Two files land in ``<campaign>/obs/`` (or ``--out DIR``):

``metrics.json``
    One schema-versioned document: the full campaign status (the same
    payload ``--status --json`` prints), a per-span-name trace digest
    (count + total seconds), and a flat ``metrics`` map.

``metrics.prom``
    The flat map rendered as a Prometheus-style textfile, ready for a
    node-exporter textfile collector.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.obs.metrics import render_prometheus

EXPORT_FORMAT = "repro-obs-snapshot"
EXPORT_VERSION = 1


def trace_summary(trace_dir: str | os.PathLike) -> dict:
    """Digest a trace directory: spans per name, seconds per name.

    Tolerates a missing directory (tracing was off) and torn files (a
    worker died mid-span) — both simply contribute nothing.
    """
    from repro.obs.tracing import load_trace_dir

    trace_dir = Path(trace_dir)
    by_name: dict[str, dict] = {}
    files = 0
    skipped = 0
    if trace_dir.is_dir():
        for loaded in load_trace_dir(trace_dir):
            files += 1
            skipped += loaded["skipped"]
            for span in loaded["spans"]:
                entry = by_name.setdefault(
                    span["name"], {"count": 0, "seconds": 0.0}
                )
                entry["count"] += 1
                if span["t1"] is not None:  # open spans have no duration
                    entry["seconds"] += max(0.0, span["t1"] - span["t0"])
    for entry in by_name.values():
        entry["seconds"] = round(entry["seconds"], 6)
    return {
        "files": files,
        "skipped_lines": skipped,
        "spans": {name: by_name[name] for name in sorted(by_name)},
    }


def _flat_metrics(status: dict, trace: dict) -> dict:
    """The snapshot's flat counter/gauge map (what the .prom renders)."""
    failures = status.get("failures", {})
    leases = status.get("leases", [])
    counters = {
        "campaign.completed": status.get("completed", 0),
        "campaign.failures": failures.get("total", 0),
        "store.corrupt_records": status.get("corrupt_records", 0),
        "store.zombie_writes": status.get("zombie_writes", 0),
        "trace.span_files": trace.get("files", 0),
        "trace.skipped_lines": trace.get("skipped_lines", 0),
    }
    for kind, count in sorted(failures.get("kinds", {}).items()):
        counters[f"campaign.failures.{kind.replace('-', '_')}"] = count
    gauges = {
        "campaign.scenario_count": status.get("scenario_count") or 0,
        "campaign.leases.total": len(leases),
        "campaign.leases.done": sum(1 for l in leases if l["done"]),
        "campaign.leases.stale": sum(1 for l in leases if l["stale"]),
    }
    histograms = {
        f"trace.{name}": {
            "count": entry["count"],
            "total": entry["seconds"],
            "min": None,
            "max": None,
            "mean": None,
        }
        for name, entry in trace.get("spans", {}).items()
    }
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


def build_snapshot(root: str | os.PathLike) -> dict:
    """The full snapshot document for a campaign directory."""
    from repro.parallel.campaign import campaign_status

    status = campaign_status(root)
    trace = trace_summary(Path(root) / "trace")
    return {
        "format": EXPORT_FORMAT,
        "version": EXPORT_VERSION,
        "status": status,
        "trace": trace,
        "metrics": _flat_metrics(status, trace),
    }


def export_snapshot(
    root: str | os.PathLike, out_dir: str | os.PathLike | None = None
) -> dict:
    """Write ``metrics.json`` + ``metrics.prom``; return their paths."""
    snapshot = build_snapshot(root)
    out = Path(out_dir) if out_dir is not None else Path(root) / "obs"
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / "metrics.json"
    prom_path = out / "metrics.prom"
    json_path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    prom_path.write_text(render_prometheus(snapshot["metrics"]))
    return {"snapshot": snapshot, "json": json_path, "prom": prom_path}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Render a machine-readable telemetry snapshot of a "
        "campaign directory (store + leases + traces; no live workers "
        "needed).",
    )
    parser.add_argument("root", type=Path, help="campaign store directory")
    parser.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="output directory (default: <root>/obs)",
    )
    args = parser.parse_args(argv)
    try:
        written = export_snapshot(args.root, args.out)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(f"wrote {written['json']}")
    print(f"wrote {written['prom']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
