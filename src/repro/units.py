"""Normalized units used throughout the reproduction.

The paper reports all threshold voltages on a normalized scale where the
nominal pass-through voltage ``Vpass`` equals 512 and GND equals 0
(Section 2 of the paper).  Time is measured in seconds; the paper's
retention experiments use days, and its refresh interval is seven days.
"""

from __future__ import annotations

#: Normalized voltage of the nominal pass-through voltage (paper Section 2).
VPASS_NOMINAL = 512.0

#: Normalized voltage representing ground.
GND = 0.0

#: Seconds per hour/day, used by the retention model and the controller.
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

#: The paper's remapping-based refresh interval (Section 3): seven days.
REFRESH_INTERVAL_DAYS = 7.0
REFRESH_INTERVAL_SECONDS = REFRESH_INTERVAL_DAYS * SECONDS_PER_DAY


def days(n: float) -> float:
    """Convert *n* days into seconds."""
    return float(n) * SECONDS_PER_DAY


def hours(n: float) -> float:
    """Convert *n* hours into seconds."""
    return float(n) * SECONDS_PER_HOUR


def as_days(seconds: float) -> float:
    """Convert *seconds* into (possibly fractional) days."""
    return float(seconds) / SECONDS_PER_DAY


def vpass_fraction(vpass: float) -> float:
    """Return *vpass* as a fraction of the nominal pass-through voltage.

    The paper quotes relaxations as percentages of nominal Vpass
    (e.g. "94% Vpass" in Figure 4).
    """
    return float(vpass) / VPASS_NOMINAL


def vpass_from_fraction(fraction: float) -> float:
    """Return the normalized Vpass for a fraction of nominal (e.g. 0.96)."""
    return float(fraction) * VPASS_NOMINAL


def vpass_reduction_percent(vpass: float) -> float:
    """Return the relaxation of *vpass* below nominal, in percent."""
    return 100.0 * (1.0 - vpass_fraction(vpass))
