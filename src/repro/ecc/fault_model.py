"""Symbol-level fault-pattern taxonomy and deterministic fault injection.

Real NAND raw errors are not i.i.d. bit flips: program-interference and
retention failures cluster (symbol bursts a symbol-oriented code like RS
absorbs cheaply), while read-disturb drift scatters single-bit errors
across the page (the out-of-model pattern that eats one ``t`` each).
This module gives the simulator both halves:

- a **taxonomy** that classifies a page's raw symbol-error pattern into
  aligned 1/2/4-symbol bursts vs. out-of-model scattered faults
  (:func:`classify_symbol_errors`), and
- a deterministic **injector** (:func:`parse_fault_spec` +
  :func:`inject_faults`) that overlays structured faults on the
  simulator's physics-derived bit-error masks, so sweeps can drive a
  decoder past capability with a *chosen* pattern shape.

Fault specs are compact strings usable as sweep-axis values:

- ``"burst2:0.001"`` — with probability ``0.001`` per page checked,
  corrupt one *aligned* 2-symbol window (every symbol in the window gets
  a random nonzero byte error).  Widths 1, 2, and 4 are the taxonomy's
  burst classes.
- ``"scatter4:0.001"`` — with the same per-page probability, flip one
  random bit in each of 4 distinct symbols, deliberately unaligned: the
  scattered shape that costs a symbol code the most.

Injection draws from a caller-provided ``numpy`` Generator; the backend
spawn-keys it from per-block state so results are bit-identical across
serial, threaded, and process executors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

#: Pattern-class codes returned by :func:`classify_symbol_errors`.
PATTERN_CLEAN = 0
PATTERN_SINGLE = 1
PATTERN_BURST2 = 2
PATTERN_BURST4 = 3
PATTERN_SCATTERED = 4

#: Code -> taxonomy name, in code order.
PATTERN_NAMES = ("clean", "single", "burst2", "burst4", "scattered")

#: Aligned burst widths the taxonomy (and the injector) recognize.
BURST_WIDTHS = (1, 2, 4)

_SPEC_RE = re.compile(r"^(burst|scatter)(\d+):([0-9.eE+-]+)$")


@dataclass(frozen=True)
class FaultSpec:
    """A parsed fault-injection axis value (see module docstring)."""

    #: ``"burst"`` (aligned symbol window) or ``"scatter"`` (spread
    #: single-bit symbol errors).
    kind: str
    #: Burst width in symbols (1/2/4) or scattered symbol count.
    size: int
    #: Per-page injection probability, per decode check.
    rate: float

    def __post_init__(self) -> None:
        if self.kind not in ("burst", "scatter"):
            raise ValueError(f"fault kind must be burst|scatter, got {self.kind!r}")
        if self.kind == "burst" and self.size not in BURST_WIDTHS:
            raise ValueError(
                f"burst width must be one of {BURST_WIDTHS}, got {self.size}"
            )
        if self.kind == "scatter" and self.size < 1:
            raise ValueError(f"scatter count must be >= 1, got {self.size}")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"fault rate must be in (0, 1], got {self.rate}")

    @property
    def label(self) -> str:
        """The canonical spec string (round-trips through the parser)."""
        return f"{self.kind}{self.size}:{self.rate:g}"


def parse_fault_spec(spec: str) -> FaultSpec:
    """Parse ``"burst2:0.001"`` / ``"scatter4:1e-3"`` into a :class:`FaultSpec`."""
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise ValueError(
            f"bad fault spec {spec!r}: expected burst{{1|2|4}}:RATE or scatterN:RATE"
        )
    kind, size, rate = match.group(1), int(match.group(2)), float(match.group(3))
    return FaultSpec(kind, size, rate)


def inject_faults(
    masks: np.ndarray, spec: FaultSpec, rng: np.random.Generator
) -> np.ndarray:
    """Overlay *spec* faults onto bit-error masks, in place.

    ``masks`` is ``(pages, page_bits)`` bool.  Each page independently
    receives one fault event with probability ``spec.rate``; returns the
    ``(pages,)`` bool vector of pages that were hit.  Only whole symbols
    (``page_bits // 8``) are eligible targets.  Draws happen in a fixed
    order (page-selection vector first, then per-hit placement in page
    order), so a fixed generator state yields a fixed injection.
    """
    pages, page_bits = masks.shape
    full_symbols = page_bits // 8
    if full_symbols < max(spec.size, 1):
        raise ValueError(
            f"page of {full_symbols} whole symbols cannot host a {spec.label} fault"
        )
    hit = rng.random(pages) < spec.rate
    for page in np.flatnonzero(hit):
        if spec.kind == "burst":
            window = int(rng.integers(0, full_symbols // spec.size))
            start = window * spec.size
            # Every symbol in the aligned window gets a random nonzero byte.
            errors = rng.integers(1, 256, size=spec.size)
            for offset, value in enumerate(errors):
                bit0 = (start + offset) * 8
                flips = np.unpackbits(np.uint8(value))
                masks[page, bit0 : bit0 + 8] ^= flips.astype(bool)
        else:
            symbols = rng.choice(full_symbols, size=spec.size, replace=False)
            bits = rng.integers(0, 8, size=spec.size)
            for symbol, bit in zip(symbols, bits):
                masks[page, symbol * 8 + bit] ^= True
    return hit


def classify_symbol_errors(symbols: np.ndarray) -> np.ndarray:
    """Classify each page's symbol-error pattern into the taxonomy.

    ``symbols`` is ``(pages, symbols_per_page)`` uint8 — nonzero entries
    are symbols in error (e.g. ``PageMaskDecode.symbols``).  Returns the
    ``(pages,)`` int8 pattern codes (``PATTERN_*``): the smallest aligned
    1/2/4-symbol window that covers every error symbol, or
    ``PATTERN_SCATTERED`` when none does.
    """
    symbols = np.atleast_2d(symbols)
    in_error = symbols != 0
    count = in_error.sum(axis=1)
    width = symbols.shape[1]
    first = np.argmax(in_error, axis=1)
    last = width - 1 - np.argmax(in_error[:, ::-1], axis=1)
    codes = np.full(symbols.shape[0], PATTERN_SCATTERED, dtype=np.int8)
    codes[first == last] = PATTERN_SINGLE
    codes[(first != last) & (first // 2 == last // 2)] = PATTERN_BURST2
    codes[(first // 2 != last // 2) & (first // 4 == last // 4)] = PATTERN_BURST4
    codes[count == 0] = PATTERN_CLEAN
    return codes


def pattern_counts(codes: np.ndarray) -> dict[str, int]:
    """Histogram pattern codes into a ``{name: count}`` dict (clean omitted)."""
    codes = np.asarray(codes)
    return {
        name: int(np.count_nonzero(codes == code))
        for code, name in enumerate(PATTERN_NAMES)
        if code != PATTERN_CLEAN
    }
