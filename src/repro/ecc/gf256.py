"""Vectorized GF(2^8) arithmetic on precomputed log/antilog tables.

The field is GF(256) built over the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (``0x11D``) with generator ``alpha = 0x02``
— the conventional choice for byte-oriented Reed-Solomon codes.  All
operations are table lookups vectorized over numpy arrays:

- ``EXP`` holds ``alpha**i`` for ``i in [0, 510)`` — *doubled* so that
  ``EXP[LOG[a] + LOG[b]]`` multiplies without a ``% 255`` (log sums stay
  below 510), the classic trick for branch-free batched multiplies.
- ``LOG`` holds the discrete log of every nonzero element
  (``LOG[0]`` is a sentinel and must never be dereferenced; the public
  helpers mask zero operands before the lookup).

Every helper accepts scalars or arbitrarily-shaped integer arrays and
broadcasts like the underlying numpy ops, returning ``uint8`` field
elements.  ``repro.ecc.rs`` builds its batched syndrome/Berlekamp-Massey
kernels directly on these tables.
"""

from __future__ import annotations

import numpy as np

#: The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 defining the field.
PRIMITIVE_POLY = 0x11D

#: The field generator: alpha = x (0x02) is primitive for 0x11D.
GENERATOR = 0x02

#: Field order and the multiplicative-group order.
ORDER = 256
GROUP_ORDER = 255


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Exp/log tables; EXP is doubled (length 510) for mod-free sums."""
    exp = np.zeros(2 * GROUP_ORDER, dtype=np.uint8)
    log = np.zeros(ORDER, dtype=np.int64)
    value = 1
    for power in range(GROUP_ORDER):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    exp[GROUP_ORDER:] = exp[:GROUP_ORDER]
    return exp, log


EXP, LOG = _build_tables()


def _as_elements(a) -> np.ndarray:
    arr = np.asarray(a)
    if arr.dtype == np.bool_ or not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(f"GF(256) elements must be integers, got dtype {arr.dtype}")
    if arr.size and (np.any(arr < 0) or np.any(arr > 255)):
        raise ValueError("GF(256) elements must lie in [0, 255]")
    return arr.astype(np.int64, copy=False)


def mul(a, b) -> np.ndarray:
    """Elementwise field product, broadcasting like ``np.multiply``."""
    a = _as_elements(a)
    b = _as_elements(b)
    nonzero = (a != 0) & (b != 0)
    # Clip zeros to 1 so LOG is never dereferenced at its sentinel slot.
    product = EXP[LOG[np.where(nonzero, a, 1)] + LOG[np.where(nonzero, b, 1)]]
    return np.where(nonzero, product, 0).astype(np.uint8)


def inv(a) -> np.ndarray:
    """Elementwise multiplicative inverse; raises on any zero element."""
    a = _as_elements(a)
    if np.any(a == 0):
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return EXP[GROUP_ORDER - LOG[a]].astype(np.uint8)


def div(a, b) -> np.ndarray:
    """Elementwise ``a / b``; raises on any zero divisor.

    ``div(0, b) == 0`` by convention, matching the field identity.
    """
    a = _as_elements(a)
    b = _as_elements(b)
    if np.any(b == 0):
        raise ZeroDivisionError("division by 0 in GF(256)")
    nonzero = a != 0
    quotient = EXP[LOG[np.where(nonzero, a, 1)] - LOG[b] + GROUP_ORDER]
    return np.where(nonzero, quotient, 0).astype(np.uint8)


def power(a, n) -> np.ndarray:
    """Elementwise ``a**n`` for nonzero bases (``0**0 == 1``, ``0**n == 0``)."""
    a = _as_elements(a)
    n = np.asarray(n, dtype=np.int64)
    zero_base = a == 0
    exponent = np.mod(LOG[np.where(zero_base, 1, a)] * n, GROUP_ORDER)
    result = EXP[exponent]
    return np.where(zero_base, np.where(n == 0, 1, 0), result).astype(np.uint8)


def alpha_power(n) -> np.ndarray:
    """``alpha**n`` for any integer exponent (negative exponents wrap)."""
    n = np.asarray(n, dtype=np.int64)
    return EXP[np.mod(n, GROUP_ORDER)].astype(np.uint8)


def poly_eval(coeffs: np.ndarray, xs) -> np.ndarray:
    """Evaluate ``sum_i coeffs[i] * x**i`` at each x (Horner, vectorized).

    ``coeffs`` is a 1-D ascending-power coefficient vector; ``xs`` is a
    scalar or array of evaluation points.
    """
    coeffs = _as_elements(np.atleast_1d(coeffs))
    xs = _as_elements(xs)
    acc = np.zeros(np.shape(xs), dtype=np.uint8)
    for coeff in coeffs[::-1]:
        acc = mul(acc, xs) ^ np.uint8(coeff)
    return acc


def poly_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of two ascending-power polynomials over GF(256)."""
    a = _as_elements(np.atleast_1d(a))
    b = _as_elements(np.atleast_1d(b))
    out = np.zeros(len(a) + len(b) - 1, dtype=np.uint8)
    for i, coeff in enumerate(a):
        if coeff:
            out[i : i + len(b)] ^= mul(coeff, b)
    return out
