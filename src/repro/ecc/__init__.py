"""Error-correcting code models.

Two engines share one batch API (`EccDecoder.decode_pages` /
`check_pages`), selected by ``EccConfig.decoder``:

- ``"threshold"`` (default) — the binomial capability model: the
  mechanisms in the paper interact with ECC through two numbers, how
  many raw bit errors a codeword can correct and how many a read
  actually contained.
- ``"rs"`` — a real symbol-level Reed-Solomon codec over GF(256)
  (:mod:`repro.ecc.gf256`, :mod:`repro.ecc.rs`): batched syndromes,
  Berlekamp-Massey, Chien search, and Forney over the simulator's raw
  bit-error masks.  It measures what the threshold model can only
  assume — miscorrection (silent data corruption) and the burst-vs-
  scattered sensitivity classified by :mod:`repro.ecc.fault_model`.
"""

from repro.ecc.config import EccConfig, DEFAULT_ECC, DECODER_KINDS
from repro.ecc.decoder import (
    BatchDecodeResult,
    DecodeResult,
    EccDecoder,
    RsBatchDecodeResult,
    RsDecodeResult,
    UncorrectableError,
)
from repro.ecc.fault_model import (
    FaultSpec,
    classify_symbol_errors,
    inject_faults,
    parse_fault_spec,
    pattern_counts,
)
from repro.ecc.rs import RsCode, RsPageDecoder

__all__ = [
    "EccConfig",
    "DEFAULT_ECC",
    "DECODER_KINDS",
    "BatchDecodeResult",
    "DecodeResult",
    "EccDecoder",
    "RsBatchDecodeResult",
    "RsDecodeResult",
    "UncorrectableError",
    "RsCode",
    "RsPageDecoder",
    "FaultSpec",
    "classify_symbol_errors",
    "inject_faults",
    "parse_fault_spec",
    "pattern_counts",
]
