"""Error-correcting code model.

The mechanisms in the paper only interact with ECC through two numbers:
how many raw bit errors a codeword can correct, and how many errors a read
actually contained.  A binomial threshold model captures this exactly; no
Galois-field arithmetic is needed (and the paper's BCH internals are not
part of its contribution).
"""

from repro.ecc.config import EccConfig, DEFAULT_ECC
from repro.ecc.decoder import (
    BatchDecodeResult,
    DecodeResult,
    EccDecoder,
    UncorrectableError,
)

__all__ = [
    "EccConfig",
    "DEFAULT_ECC",
    "BatchDecodeResult",
    "DecodeResult",
    "EccDecoder",
    "UncorrectableError",
]
