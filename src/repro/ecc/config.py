"""ECC provisioning: correction capability and tolerable RBER.

The paper's flash ECC "can tolerate an RBER of up to 1e-3" (Section 2.5).
We model a BCH-like code correcting ``correctable_bits`` per
``codeword_bits`` codeword; the *tolerable* RBER is the raw error
probability at which a codeword still fails only with negligible
probability (the solver below), and it lands at about 1.05e-3 for the
default 40-bit / 1KB-class configuration — matching the paper's number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from scipy.optimize import brentq
from scipy.stats import binom, poisson

from repro.physics import constants

#: Decoder engines selectable on :attr:`EccConfig.decoder`.
DECODER_KINDS = ("threshold", "rs")


@dataclass(frozen=True)
class EccConfig:
    """Provisioned ECC strength plus the paper's reserved-margin policy.

    ``decoder`` selects the engine :class:`~repro.ecc.decoder.EccDecoder`
    runs: the binomial ``"threshold"`` model (default) or the real
    ``"rs"`` symbol codec, whose code rate is ``rs_n``/``rs_k`` (total /
    data symbols per GF(256) codeword; ``t = (rs_n - rs_k) // 2`` symbol
    errors correctable).  The provisioning math above the engines
    (tolerable RBER, page capability, reserved margin) is shared — RDR
    and the Vpass tuner budget in raw bits regardless of decoder.
    """

    codeword_bits: int = constants.ECC_CODEWORD_BITS
    correctable_bits: int = constants.ECC_T_BITS
    reserved_margin_fraction: float = constants.ECC_RESERVED_MARGIN_FRACTION
    codeword_failure_target: float = 1e-13
    decoder: str = "threshold"
    rs_n: int = 255
    rs_k: int = 223

    def __post_init__(self) -> None:
        if self.codeword_bits <= 0 or self.correctable_bits <= 0:
            raise ValueError("codeword and correctable bits must be positive")
        if self.correctable_bits >= self.codeword_bits:
            raise ValueError("cannot correct more bits than the codeword holds")
        if not 0.0 <= self.reserved_margin_fraction < 1.0:
            raise ValueError("reserved margin fraction must be in [0, 1)")
        if not 0.0 < self.codeword_failure_target < 1.0:
            raise ValueError("failure target must be a probability")
        if self.decoder not in DECODER_KINDS:
            raise ValueError(
                f"decoder must be one of {DECODER_KINDS}, got {self.decoder!r}"
            )
        # Mirror RsCode's constraints here so a bad spec fails at config
        # construction (the sweep grid validates specs without building
        # decoders).
        if not 3 <= self.rs_n <= 255:
            raise ValueError(f"rs_n must be in [3, 255], got {self.rs_n}")
        if not 1 <= self.rs_k < self.rs_n:
            raise ValueError(f"rs_k must be in [1, rs_n), got {self.rs_k}")
        if (self.rs_n - self.rs_k) % 2:
            raise ValueError(
                f"rs_n - rs_k must be even, got n={self.rs_n} k={self.rs_k}"
            )

    @property
    def rs_t(self) -> int:
        """Correctable symbol errors per RS codeword."""
        return (self.rs_n - self.rs_k) // 2

    @property
    def raw_capability_rber(self) -> float:
        """Raw correction capability as a bit fraction (t / n)."""
        return self.correctable_bits / self.codeword_bits

    def codeword_failure_probability(self, rber: float) -> float:
        """P[a codeword sees more errors than it can correct] at *rber*."""
        if not 0.0 <= rber <= 1.0:
            raise ValueError("rber must be a probability")
        return float(binom.sf(self.correctable_bits, self.codeword_bits, rber))

    @property
    def tolerable_rber(self) -> float:
        """Highest RBER at which codewords still meet the failure target.

        This is the paper's "ECC can tolerate an RBER of up to 1e-3":
        the operating envelope, below the raw t/n capability because error
        counts fluctuate.
        """
        return _tolerable_rber(
            self.codeword_bits, self.correctable_bits, self.codeword_failure_target
        )

    def page_capability_bits(self, page_bits: int) -> int:
        """Correctable raw bit errors per *page_bits*-bit page, at the
        provisioned (tolerable) operating level.

        The VpassTuner margins are computed against this capability,
        matching the paper's Figure 6 where the margin is 20% of the 1e-3
        capability line.  Memoized by configuration *values* (decoders
        and the RDR escalation path ask on every page, and the answer
        never changes), so no config instance is pinned by the cache.
        """
        if page_bits <= 0:
            raise ValueError("page must contain at least one bit")
        return _page_capability_bits(
            self.codeword_bits,
            self.correctable_bits,
            self.codeword_failure_target,
            page_bits,
        )

    def usable_capability_bits(self, page_bits: int) -> int:
        """Page capability minus the paper's 20% reserved margin."""
        cap = self.page_capability_bits(page_bits)
        return int(math.floor((1.0 - self.reserved_margin_fraction) * cap))

    def expected_worst_page_errors(self, rber: float, page_bits: int, pages: int) -> int:
        """Deterministic model of the worst page's error count among *pages*
        statistically identical pages (Poisson upper quantile).

        Used by the analytic tunable block to produce the maximum estimated
        error (MEE) the mechanism would observe on its predicted worst page.
        """
        if pages < 1:
            raise ValueError("need at least one page")
        lam = max(rber, 0.0) * page_bits
        quantile = 1.0 - 1.0 / (pages + 1.0)
        return int(poisson.ppf(quantile, lam)) if lam > 0 else 0


@lru_cache(maxsize=1024)
def _page_capability_bits(
    codeword_bits: int, correctable_bits: int, target: float, page_bits: int
) -> int:
    return max(
        int(math.floor(_tolerable_rber(codeword_bits, correctable_bits, target) * page_bits)),
        1,
    )


@lru_cache(maxsize=64)
def _tolerable_rber(codeword_bits: int, correctable_bits: int, target: float) -> float:
    def excess(p: float) -> float:
        return float(binom.sf(correctable_bits, codeword_bits, p)) - target

    # The capability is bracketed well inside (1e-8, t/n).
    upper = correctable_bits / codeword_bits
    return float(brentq(excess, 1e-8, upper, xtol=1e-9))


#: Default provisioning used across the reproduction (tolerable RBER ~1e-3).
DEFAULT_ECC = EccConfig()
