"""Batched Reed-Solomon codec over GF(256), vectorized across codewords.

``RsCode(n, k)`` is a systematic RS code with ``n`` total symbols, ``k``
data symbols, and ``t = (n - k) // 2`` correctable symbol errors per
codeword (first consecutive root ``fcr = 1``, generator ``alpha = 0x02``,
field polynomial ``0x11D`` — see :mod:`repro.ecc.gf256`).  Codewords are
stored data-first: index ``j`` of a codeword array is the coefficient of
``x**(n - 1 - j)``.

The decoder is written for the simulator's workload — *many* codewords
at once, most of them error-free:

- :meth:`RsCode.syndromes` evaluates all ``2t`` syndromes of an
  ``(m, n)`` batch against a precomputed log-domain power table.
- :meth:`RsCode.decode` early-exits every row whose syndromes are zero,
  then runs a fully vectorized (branchless, ``np.where``-masked)
  Berlekamp-Massey across the remaining rows, a Chien search over all
  ``n`` positions, and Forney magnitudes — finishing with a syndrome
  re-check of each corrected row, so ``ok`` *guarantees* the corrected
  row is a codeword.
- Rows may be *shortened*: ``lengths[i] < n`` declares the leading
  ``n - lengths[i]`` symbols virtual zeros, and any claimed correction
  in that region invalidates the decode (standard shortened-RS
  semantics).

``RsPageDecoder`` maps simulator pages onto the code: page bit ``b``
lands in symbol ``b // 8`` (big-endian within the byte, i.e.
``np.packbits`` order) and a page's symbols split into
``ceil(symbols / n)`` near-equal shortened codewords.  Because syndromes
are linear, the engine decodes raw *bit-error masks* directly (the true
data is the implicit all-zero codeword): a successful decode must
recover the zero word, so ``ok`` with a nonzero corrected row is a
**miscorrection** — the silent-data-corruption case a threshold model
cannot represent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc import gf256
from repro.ecc.gf256 import EXP, GROUP_ORDER, LOG

#: Rows per chunk in the dense syndrome kernel — bounds the transient
#: ``(chunk, 2t, n)`` lookup tensor to a few MB.
_SYNDROME_CHUNK = 1024


@dataclass(frozen=True)
class RsBatchResult:
    """Outcome of one batched :meth:`RsCode.decode` call."""

    #: ``(m, n)`` uint8 — the corrected words (rows with ``~ok`` are
    #: returned unmodified).
    corrected: np.ndarray
    #: ``(m,)`` bool — decoder-reported success (corrected row verified
    #: to be a codeword).
    ok: np.ndarray
    #: ``(m,)`` int64 — symbols the decoder changed (0 where ``~ok``).
    corrected_symbols: np.ndarray


@dataclass(frozen=True)
class PageMaskDecode:
    """Outcome of decoding raw page bit-error masks (see ``decode_masks``)."""

    #: ``(pages,)`` bool — every codeword of the page decoded.
    ok: np.ndarray
    #: ``(pages,)`` bool — decode "succeeded" but did not recover the
    #: true data: silent data corruption.
    miscorrected: np.ndarray
    #: ``(pages,)`` int64 — raw bit errors per page (mask popcount).
    bit_errors: np.ndarray
    #: ``(pages,)`` int64 — raw symbol errors per page.
    symbol_errors: np.ndarray
    #: ``(pages, symbols)`` uint8 — the page masks packed to symbols
    #: (kept for fault-pattern classification).
    symbols: np.ndarray


class RsCode:
    """A systematic ``RS(n, k)`` code with batched numpy decode."""

    #: First consecutive root: generator roots are alpha^1 .. alpha^2t.
    fcr = 1

    def __init__(self, n: int, k: int):
        if not 3 <= n <= 255:
            raise ValueError(f"RS n must be in [3, 255], got {n}")
        if not 1 <= k < n:
            raise ValueError(f"RS k must be in [1, n), got k={k} n={n}")
        if (n - k) % 2:
            raise ValueError(
                f"RS n - k must be even (t parity symbol pairs), got n={n} k={k}"
            )
        self.n = n
        self.k = k
        self.nparity = n - k
        self.t = (n - k) // 2
        # Generator polynomial prod_{i=1..2t} (x + alpha^i), ascending powers.
        generator = np.array([1], dtype=np.uint8)
        for i in range(1, self.nparity + 1):
            generator = gf256.poly_mul(generator, [int(gf256.alpha_power(i)), 1])
        self.generator = generator
        #: g in descending powers with the monic lead dropped — the
        #: feedback taps of the systematic-encode LFSR.
        self._lfsr_taps = generator[::-1][1:].copy()
        positions = n - 1 - np.arange(n)
        roots = np.arange(self.fcr, self.fcr + self.nparity)
        #: (2t, n) log-domain powers for the syndrome kernel:
        #: syndrome i of word w is XOR_j w[j] * alpha^(roots[i] * positions[j]).
        self._synd_log = (roots[:, None] * positions[None, :]) % GROUP_ORDER
        #: (t+1, n) log-domain powers for the Chien search:
        #: locator term i at position j is C[i] * alpha^(-i * positions[j]).
        degrees = np.arange(self.t + 1)
        self._chien_log = (-(degrees[:, None] * positions[None, :])) % GROUP_ORDER
        #: (n,) log of X_j^-1 = alpha^(-positions[j]) for Forney.
        self._xinv_log = (-positions) % GROUP_ORDER

    def __repr__(self) -> str:
        return f"RsCode(n={self.n}, k={self.k})"

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematically encode ``(m, k)`` data rows to ``(m, n)`` codewords.

        Parity is the remainder of ``d(x) * x^(n-k)`` by the generator,
        computed with the standard LFSR, one vectorized step per data
        symbol (the encoder is test/bench infrastructure; the simulator
        hot path only ever decodes).
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.uint8))
        if data.shape[1] != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {data.shape[1]}")
        m = data.shape[0]
        parity = np.zeros((m, self.nparity), dtype=np.uint8)
        for j in range(self.k):
            feedback = data[:, j] ^ parity[:, 0]
            parity[:, :-1] = parity[:, 1:]
            parity[:, -1] = 0
            parity ^= gf256.mul(feedback[:, None], self._lfsr_taps[None, :])
        return np.concatenate([data, parity], axis=1)

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------

    def syndromes(self, words: np.ndarray) -> np.ndarray:
        """All ``2t`` syndromes of each row of an ``(m, n)`` batch."""
        words = np.atleast_2d(np.asarray(words, dtype=np.uint8))
        if words.shape[1] != self.n:
            raise ValueError(f"expected {self.n} symbols per word, got {words.shape[1]}")
        m = words.shape[0]
        out = np.zeros((m, self.nparity), dtype=np.uint8)
        for start in range(0, m, _SYNDROME_CHUNK):
            chunk = words[start : start + _SYNDROME_CHUNK]
            logs = LOG[chunk]  # sentinel at 0, masked below
            terms = EXP[logs[:, None, :] + self._synd_log[None, :, :]]
            terms = np.where((chunk != 0)[:, None, :], terms, 0)
            out[start : start + _SYNDROME_CHUNK] = np.bitwise_xor.reduce(terms, axis=2)
        return out

    def _berlekamp_massey(self, synd: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Branchless batched BM: error locators for ``(m, 2t)`` syndromes.

        Returns ``(locators, lengths)`` — ``(m, 2t + 1)`` ascending-power
        locator coefficients (``locators[:, 0] == 1``) and the LFSR
        length ``L`` per row.
        """
        m = synd.shape[0]
        width = self.nparity + 1
        locator = np.zeros((m, width), dtype=np.uint8)
        locator[:, 0] = 1
        # shifted = x^shift * B, maintained incrementally so the per-row
        # shift count never materializes: every iteration multiplies it
        # by x; a length change swaps in x * (old locator) instead.
        shifted = np.zeros((m, width), dtype=np.uint8)
        shifted[:, 1] = 1
        length = np.zeros(m, dtype=np.int64)
        scale = np.ones(m, dtype=np.uint8)
        for i in range(self.nparity):
            discrepancy = synd[:, i].copy()
            for j in range(1, min(i, self.nparity) + 1):
                discrepancy ^= gf256.mul(locator[:, j], synd[:, i - j])
            coef = gf256.div(discrepancy, scale)  # 0 where discrepancy == 0
            updated = locator ^ gf256.mul(coef[:, None], shifted)
            swap = (discrepancy != 0) & (2 * length <= i)
            scale = np.where(swap, discrepancy, scale)
            base = np.where(swap[:, None], locator, shifted)
            length = np.where(swap, i + 1 - length, length)
            shifted = np.zeros_like(base)
            shifted[:, 1:] = base[:, :-1]
            locator = updated
        return locator, length

    def decode(
        self, words: np.ndarray, lengths: np.ndarray | None = None
    ) -> RsBatchResult:
        """Decode an ``(m, n)`` batch; see :class:`RsBatchResult`.

        ``lengths`` (optional, ``(m,)`` int) marks shortened rows: only
        the trailing ``lengths[i]`` symbols are real, the leading ones
        are virtual zeros and claimed corrections there fail the decode.
        """
        words = np.atleast_2d(np.asarray(words, dtype=np.uint8))
        m = words.shape[0]
        corrected = words.copy()
        ok = np.ones(m, dtype=bool)
        n_corrected = np.zeros(m, dtype=np.int64)
        # Early exit: all-zero rows are codewords; nonzero rows with
        # zero syndromes are handled the same way below.
        busy = np.flatnonzero(np.any(words != 0, axis=1))
        if busy.size == 0:
            return RsBatchResult(corrected, ok, n_corrected)
        synd = self.syndromes(words[busy])
        dirty = np.any(synd != 0, axis=1)
        busy = busy[dirty]
        if busy.size == 0:
            return RsBatchResult(corrected, ok, n_corrected)
        synd = synd[dirty]

        locator, length = self._berlekamp_massey(synd)
        # Candidate rows: locator degree within capability (coefficients
        # above t must all be zero, by BM deg(C) <= L <= t).
        candidate = (length >= 1) & (length <= self.t)
        candidate &= ~np.any(locator[:, self.t + 1 :] != 0, axis=1)
        ok[busy] = False  # pessimistic; proven rows flip back below
        cand = np.flatnonzero(candidate)
        if cand.size == 0:
            return RsBatchResult(corrected, ok, n_corrected)
        rows = busy[cand]  # global row ids of candidates
        loc = locator[cand][:, : self.t + 1]
        ln = length[cand]
        syn = synd[cand]

        # Chien search: evaluate the locator at alpha^(-positions[j]).
        acc = np.ones((rows.size, self.n), dtype=np.uint8)  # C[:, 0] == 1
        for i in range(1, self.t + 1):
            ci = loc[:, i]
            nonzero = ci != 0
            term = EXP[LOG[np.where(nonzero, ci, 1)][:, None] + self._chien_log[i][None, :]]
            acc ^= np.where(nonzero[:, None], term, 0)
        root_mask = acc == 0
        valid = root_mask.sum(axis=1) == ln
        if lengths is not None:
            lengths = np.asarray(lengths, dtype=np.int64)
            # A root in the virtual (shortened-away) prefix is a claimed
            # correction at a position that does not exist.
            positions = np.arange(self.n)
            virtual = positions[None, :] < (self.n - lengths[rows])[:, None]
            valid &= ~np.any(root_mask & virtual, axis=1)

        keep = np.flatnonzero(valid)
        if keep.size == 0:
            return RsBatchResult(corrected, ok, n_corrected)
        rows, loc, syn, root_mask = rows[keep], loc[keep], syn[keep], root_mask[keep]

        # Forney: Omega = S * Lambda mod x^2t, magnitude = Omega(Xi^-1)/Lambda'(Xi^-1).
        omega = np.zeros((rows.size, self.nparity), dtype=np.uint8)
        for i in range(self.t + 1):
            omega[:, i:] ^= gf256.mul(loc[:, i][:, None], syn[:, : self.nparity - i])
        ridx, jdx = np.nonzero(root_mask)
        xinv = EXP[self._xinv_log[jdx]]
        numerator = np.zeros(ridx.size, dtype=np.uint8)
        xpow = np.ones(ridx.size, dtype=np.uint8)
        denominator = np.zeros(ridx.size, dtype=np.uint8)
        for i in range(self.nparity):
            numerator ^= gf256.mul(omega[ridx, i], xpow)
            if i + 1 <= self.t and (i + 1) % 2 == 1:
                # Lambda'(x) = sum over odd i of C[i] x^(i-1); xpow is x^i here.
                denominator ^= gf256.mul(loc[ridx, i + 1], xpow)
            xpow = gf256.mul(xpow, xinv)
        bad_root = (denominator == 0) | (numerator == 0)
        magnitude = gf256.div(numerator, np.where(denominator == 0, 1, denominator))
        # A zero or undefined magnitude at a claimed location fails the row.
        row_ok = np.ones(rows.size, dtype=bool)
        np.logical_and.at(row_ok, ridx, ~bad_root)
        corrected[rows[ridx], jdx] ^= np.where(bad_root, 0, magnitude)

        # Final guarantee: a corrected row must be a codeword.
        recheck = np.flatnonzero(row_ok)
        if recheck.size:
            clean = ~np.any(self.syndromes(corrected[rows[recheck]]) != 0, axis=1)
            row_ok[recheck] &= clean
        # Revert rows that failed any root/verification check.
        failed = np.flatnonzero(~row_ok)
        corrected[rows[failed]] = words[rows[failed]]
        ok[rows[row_ok]] = True
        counts = np.zeros(rows.size, dtype=np.int64)
        np.add.at(counts, ridx, 1)
        n_corrected[rows[row_ok]] = counts[row_ok]
        return RsBatchResult(corrected, ok, n_corrected)


class RsPageDecoder:
    """Maps fixed-size simulator pages onto shortened ``RsCode`` words.

    A page of ``page_bits`` bits packs (big-endian, ``np.packbits``) into
    ``ceil(page_bits / 8)`` symbols, which split into
    ``ceil(symbols / n)`` codewords of near-equal shortened length — the
    layout real controllers use (several ECC chunks per flash page).
    """

    def __init__(self, code: RsCode, page_bits: int):
        if page_bits < 1:
            raise ValueError(f"page_bits must be positive, got {page_bits}")
        self.code = code
        self.page_bits = page_bits
        self.symbols_per_page = -(-page_bits // 8)
        self.codewords_per_page = -(-self.symbols_per_page // code.n)
        base, extra = divmod(self.symbols_per_page, self.codewords_per_page)
        lengths = [base + 1] * extra + [base] * (self.codewords_per_page - extra)
        self.lengths = np.array(lengths, dtype=np.int64)
        if self.lengths.min() <= code.nparity:
            raise ValueError(
                f"page of {self.symbols_per_page} symbols shortens RS(n={code.n}, "
                f"k={code.k}) below its {code.nparity} parity symbols"
            )
        # Flat scatter indices: source symbol s of a page lands at
        # destination[s] in the (codewords_per_page * n) grid, right-aligned
        # per codeword (leading virtual zeros).
        destination = np.zeros(self.symbols_per_page, dtype=np.int64)
        offset = 0
        for c, ln in enumerate(lengths):
            destination[offset : offset + ln] = c * code.n + (code.n - ln) + np.arange(ln)
            offset += ln
        self._destination = destination

    def decode_masks(self, masks: np.ndarray) -> PageMaskDecode:
        """Decode raw bit-error masks, one page per row.

        ``masks`` is ``(pages, page_bits)`` bool/0-1: the XOR of read and
        true data.  By linearity the mask *is* the received word over the
        all-zero codeword, so a correct decode recovers all-zeros and a
        successful decode with surviving nonzero symbols is a
        miscorrection (see module docstring).
        """
        masks = np.atleast_2d(masks)
        if masks.shape[1] != self.page_bits:
            raise ValueError(
                f"expected {self.page_bits} bits per page, got {masks.shape[1]}"
            )
        pages = masks.shape[0]
        symbols = np.packbits(masks.astype(np.uint8, copy=False), axis=1)
        grid = np.zeros((pages, self.codewords_per_page * self.code.n), dtype=np.uint8)
        grid[:, self._destination] = symbols
        words = grid.reshape(pages * self.codewords_per_page, self.code.n)
        lengths = np.tile(self.lengths, pages)
        result = self.code.decode(words, lengths)
        per_page_ok = result.ok.reshape(pages, self.codewords_per_page)
        residual = np.any(result.corrected != 0, axis=1)
        miscorrected_cw = (result.ok & residual).reshape(pages, self.codewords_per_page)
        ok = per_page_ok.all(axis=1)
        miscorrected = ok & miscorrected_cw.any(axis=1)
        bit_errors = np.count_nonzero(masks, axis=1).astype(np.int64)
        symbol_errors = np.count_nonzero(symbols, axis=1).astype(np.int64)
        return PageMaskDecode(ok, miscorrected, bit_errors, symbol_errors, symbols)
