"""ECC decoder models: capability threshold and symbol-level Reed-Solomon.

Two engines share one batch contract (``decode_pages`` / ``check_pages``
/ ``decode_error_masks``), selected by ``EccConfig.decoder``:

- ``"threshold"`` — the original model: decoding succeeds whenever the
  raw bit-error count is within the page capability, and reports the
  exact corrected-error count (as real controllers expose for wear
  tracking).  Miscorrection does not exist in this model.
- ``"rs"`` — the real codec: pages map onto shortened ``RS(n, k)``
  codewords over GF(256) (:mod:`repro.ecc.rs`) and the batched
  syndrome/Berlekamp-Massey/Chien/Forney pipeline decodes the raw
  bit-error *masks* directly (the simulator knows ground truth, so the
  mask is the received word over the implicit all-zero codeword).  A
  "successful" decode that fails to recover the truth is reported as a
  **miscorrection** — silent data corruption the threshold model cannot
  represent.

Either way an uncorrectable page is the condition RDR exists to repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ecc.config import EccConfig, DEFAULT_ECC
from repro.ecc.rs import RsCode, RsPageDecoder


class UncorrectableError(Exception):
    """Raised when a page read contains more errors than ECC can correct."""

    def __init__(self, errors: int, capability: int):
        super().__init__(
            f"uncorrectable page: {errors} raw bit errors exceed ECC capability {capability}"
        )
        self.errors = errors
        self.capability = capability


def _require_bit_array(name: str, bits: np.ndarray) -> None:
    """Reject non-bit arrays once, at the public API edge.

    Float and bool arrays used to slip through silently (a float ``0.3``
    would count as an error against ``0`` and bools would mask dtype bugs
    upstream); the decode contract is integer 0/1 arrays exactly.
    """
    if bits.dtype == np.bool_ or not np.issubdtype(bits.dtype, np.integer):
        raise ValueError(
            f"{name} must be an integer 0/1 bit array, got dtype {bits.dtype}"
        )
    if bits.size and (bits.min() < 0 or bits.max() > 1):
        raise ValueError(f"{name} must contain only 0/1 bit values")


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one page."""

    success: bool
    raw_errors: int
    capability: int

    @property
    def margin(self) -> int:
        """Unused correction capability (negative when decoding failed)."""
        return self.capability - self.raw_errors


@dataclass(frozen=True)
class RsDecodeResult(DecodeResult):
    """One page decoded by the RS engine.

    ``raw_errors`` stays the raw *bit* count (so wear accounting is
    decoder-independent); ``capability`` and :attr:`margin` are in
    *symbols* — the unit the RS code actually corrects in.
    """

    miscorrected: bool = False
    #: raw symbol errors across the page's codewords.
    symbol_errors: int = 0

    @property
    def margin(self) -> int:
        """Unused symbol-correction capability (negative on failure)."""
        return self.capability - self.symbol_errors


@dataclass(frozen=True)
class BatchDecodeResult:
    """Outcome of decoding a batch of equal-sized pages."""

    #: raw bit errors per page.
    raw_errors: np.ndarray
    #: per-page decode success (errors within capability).
    success: np.ndarray
    #: shared correction capability of the batch's page size.
    capability: int

    def __len__(self) -> int:
        return int(self.raw_errors.size)

    @property
    def margins(self) -> np.ndarray:
        """Unused correction capability per page (negative on failure)."""
        return self.capability - self.raw_errors

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not -len(self) <= index < len(self):
            raise IndexError(
                f"page index {index} out of range for batch of {len(self)} pages"
            )
        return index

    def page(self, index: int) -> DecodeResult:
        """The scalar :class:`DecodeResult` of one page of the batch."""
        index = self._check_index(index)
        return DecodeResult(
            success=bool(self.success[index]),
            raw_errors=int(self.raw_errors[index]),
            capability=self.capability,
        )


@dataclass(frozen=True)
class RsBatchDecodeResult(BatchDecodeResult):
    """A batch decoded by the RS engine (see :class:`RsDecodeResult`).

    ``capability`` / :attr:`margins` are in symbols; ``raw_errors`` in
    bits, identical to what the threshold decoder reports for the same
    masks — the invariant the decoder-equivalence suite pins.
    """

    #: per-page silent-data-corruption flag (decode "succeeded" without
    #: recovering the truth).
    miscorrected: np.ndarray = field(default=None)
    #: raw symbol errors per page.
    symbol_errors: np.ndarray = field(default=None)

    @property
    def margins(self) -> np.ndarray:
        """Unused symbol-correction capability per page."""
        return self.capability - self.symbol_errors

    def page(self, index: int) -> RsDecodeResult:
        """The scalar :class:`RsDecodeResult` of one page of the batch."""
        index = self._check_index(index)
        return RsDecodeResult(
            success=bool(self.success[index]),
            raw_errors=int(self.raw_errors[index]),
            capability=self.capability,
            miscorrected=bool(self.miscorrected[index]),
            symbol_errors=int(self.symbol_errors[index]),
        )


class EccDecoder:
    """Decode pages by comparing raw reads against ground truth.

    The simulator knows the programmed data, so raw errors are exact;
    ``config.decoder`` picks the engine that judges them (see module
    docstring).  One decoder instance caches the RS page layout per page
    size, so batch decodes of a steady geometry pay the table setup once.
    """

    def __init__(self, config: EccConfig = DEFAULT_ECC):
        self.config = config
        self._rs = RsCode(config.rs_n, config.rs_k) if config.decoder == "rs" else None
        self._page_codecs: dict[int, RsPageDecoder] = {}

    @property
    def kind(self) -> str:
        """The active engine: ``"threshold"`` or ``"rs"``."""
        return self.config.decoder

    def _codec(self, page_bits: int) -> RsPageDecoder:
        codec = self._page_codecs.get(page_bits)
        if codec is None:
            codec = RsPageDecoder(self._rs, page_bits)
            self._page_codecs[page_bits] = codec
        return codec

    def decode_error_masks(self, masks: np.ndarray) -> BatchDecodeResult:
        """Decode raw bit-error masks — ``(pages, page_bits)`` bool.

        This is the engine-internal entry: the backend senses, diffs
        against truth (and optionally injects faults), then hands the
        boolean masks here.  The threshold engine counts them; the RS
        engine decodes them as received words (module docstring).
        ``raw_errors`` is the mask popcount under both engines.
        """
        masks = np.asarray(masks)
        if masks.ndim != 2:
            raise ValueError("decode_error_masks expects (pages, page_bits) masks")
        if self._rs is None:
            errors = np.count_nonzero(masks, axis=1).astype(np.int64)
            capability = self.config.page_capability_bits(masks.shape[1])
            return BatchDecodeResult(
                raw_errors=errors, success=errors <= capability, capability=capability
            )
        codec = self._codec(masks.shape[1])
        out = codec.decode_masks(masks)
        return RsBatchDecodeResult(
            raw_errors=out.bit_errors,
            success=out.ok,
            capability=self._rs.t * codec.codewords_per_page,
            miscorrected=out.miscorrected,
            symbol_errors=out.symbol_errors,
        )

    def decode(self, read_bits: np.ndarray, true_bits: np.ndarray) -> DecodeResult:
        """Attempt to decode a raw page read.  Never raises on decode
        failure; inspect :attr:`DecodeResult.success`."""
        read_bits = np.asarray(read_bits)
        true_bits = np.asarray(true_bits)
        if read_bits.shape != true_bits.shape:
            raise ValueError("read and true bit arrays must have the same shape")
        _require_bit_array("read bits", read_bits)
        _require_bit_array("true bits", true_bits)
        if self._rs is not None:
            masks = (read_bits != true_bits).reshape(1, -1)
            return self.decode_error_masks(masks).page(0)
        errors = int((read_bits != true_bits).sum())
        capability = self.config.page_capability_bits(read_bits.size)
        return DecodeResult(success=errors <= capability, raw_errors=errors, capability=capability)

    def decode_or_raise(self, read_bits: np.ndarray, true_bits: np.ndarray) -> DecodeResult:
        """Like :meth:`decode` but raises :class:`UncorrectableError` on
        failure (the data-loss event of Section 4)."""
        result = self.decode(read_bits, true_bits)
        if not result.success:
            raise UncorrectableError(result.raw_errors, result.capability)
        return result

    def decode_pages(
        self, read_bits: np.ndarray, true_bits: np.ndarray
    ) -> BatchDecodeResult:
        """Batched :meth:`decode`: one ``(pages, page_bits)`` comparison.

        Raw errors fall out of a single XOR over the bit matrices; the
        threshold engine resolves capability once per page size, and the
        RS engine decodes the whole XOR-mask batch through one
        syndrome/BM/Chien/Forney pass — either way a flushed batch is a
        few vectorized passes instead of a Python loop.

        **Bit-identity.**  ``decode_pages(R, T).page(i)`` equals
        ``decode(R[i], T[i])`` for every row — same raw-error counts,
        same success flags, same capability (pinned by
        ``tests/ecc/test_decoder.py``).  Decoding only reads its
        arguments; it never mutates block state or consumes RNG, so it
        can run on any sensed batch without perturbing the simulation.
        """
        read_bits = np.asarray(read_bits)
        true_bits = np.asarray(true_bits)
        if read_bits.shape != true_bits.shape:
            raise ValueError("read and true bit arrays must have the same shape")
        if read_bits.ndim != 2:
            raise ValueError("decode_pages expects (pages, page_bits) matrices")
        _require_bit_array("read bits", read_bits)
        _require_bit_array("true bits", true_bits)
        if self._rs is not None:
            return self.decode_error_masks(read_bits != true_bits)
        errors = np.count_nonzero(read_bits != true_bits, axis=1).astype(np.int64)
        capability = self.config.page_capability_bits(read_bits.shape[1])
        return BatchDecodeResult(
            raw_errors=errors, success=errors <= capability, capability=capability
        )

    def check_page(
        self,
        flash_block,
        page: int,
        now: float = 0.0,
        vpass: float | None = None,
        record_disturb: bool = False,
    ) -> DecodeResult:
        """Decode one page of a simulated :class:`~repro.flash.block.FlashBlock`.

        This is the controller-side decode of a host read: sense the page
        at the current simulation time and compare against the programmed
        data.  Disturb recording defaults to off because the caller (the
        simulation engine) accounts read disturb in bulk per window.
        """
        kwargs = {} if vpass is None else {"vpass": vpass}
        read_bits = flash_block.read_page(
            page, now, record_disturb=record_disturb, **kwargs
        )
        true_bits = flash_block.expected_page_bits(page)
        return self.decode(read_bits, true_bits)

    def check_pages(
        self,
        flash_block,
        pages: np.ndarray,
        now: float = 0.0,
        vpass: float | None = None,
        record_disturb: bool = False,
    ) -> BatchDecodeResult:
        """Batched :meth:`check_page` against one simulated block.

        The threshold engine uses the block's fused error counting
        (:meth:`~repro.flash.block.FlashBlock.page_error_counts`); the RS
        engine takes the underlying error *positions*
        (:meth:`~repro.flash.block.FlashBlock.page_error_masks`) and
        decodes them — both share a single voltage materialization.

        **Bit-identity.**  Results equal a non-recording
        :meth:`check_page` loop over *pages*; every page is sensed at
        the batch's entry exposure (recording, when enabled, charges
        disturb after sensing — the flush-granular contract of
        :meth:`~repro.controller.backends.FlashChipBackend.on_reads`).

        **Cache precondition.**  Inherits the block's ``(now,
        voltage_epoch)`` cache contract: out-of-band cell mutations need
        :meth:`~repro.flash.block.FlashBlock.invalidate_voltage_cache`
        before decoding.
        """
        kwargs = {} if vpass is None else {"vpass": vpass}
        if self._rs is not None:
            masks = flash_block.page_error_masks(
                pages, now, record_disturb=record_disturb, **kwargs
            )
            return self.decode_error_masks(masks)
        errors = flash_block.page_error_counts(
            pages, now, record_disturb=record_disturb, **kwargs
        )
        capability = self.config.page_capability_bits(
            flash_block.geometry.bitlines_per_block
        )
        return BatchDecodeResult(
            raw_errors=errors, success=errors <= capability, capability=capability
        )
