"""Threshold ECC decoder model.

Decoding succeeds (and reports the exact corrected-error count, as real
controllers expose for wear tracking) whenever the raw error count is
within the page capability; otherwise the read is uncorrectable — the
condition RDR exists to repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.config import EccConfig, DEFAULT_ECC


class UncorrectableError(Exception):
    """Raised when a page read contains more errors than ECC can correct."""

    def __init__(self, errors: int, capability: int):
        super().__init__(
            f"uncorrectable page: {errors} raw bit errors exceed ECC capability {capability}"
        )
        self.errors = errors
        self.capability = capability


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one page."""

    success: bool
    raw_errors: int
    capability: int

    @property
    def margin(self) -> int:
        """Unused correction capability (negative when decoding failed)."""
        return self.capability - self.raw_errors


@dataclass(frozen=True)
class BatchDecodeResult:
    """Outcome of decoding a batch of equal-sized pages."""

    #: raw bit errors per page.
    raw_errors: np.ndarray
    #: per-page decode success (errors within capability).
    success: np.ndarray
    #: shared correction capability of the batch's page size.
    capability: int

    def __len__(self) -> int:
        return int(self.raw_errors.size)

    @property
    def margins(self) -> np.ndarray:
        """Unused correction capability per page (negative on failure)."""
        return self.capability - self.raw_errors

    def page(self, index: int) -> DecodeResult:
        """The scalar :class:`DecodeResult` of one page of the batch."""
        return DecodeResult(
            success=bool(self.success[index]),
            raw_errors=int(self.raw_errors[index]),
            capability=self.capability,
        )


class EccDecoder:
    """Decode pages by comparing raw reads against ground truth.

    The simulator knows the programmed data, so the decoder counts raw
    errors exactly; a real BCH decoder reports the same number on success.
    """

    def __init__(self, config: EccConfig = DEFAULT_ECC):
        self.config = config

    def decode(self, read_bits: np.ndarray, true_bits: np.ndarray) -> DecodeResult:
        """Attempt to decode a raw page read.  Never raises; inspect
        :attr:`DecodeResult.success`."""
        read_bits = np.asarray(read_bits)
        true_bits = np.asarray(true_bits)
        if read_bits.shape != true_bits.shape:
            raise ValueError("read and true bit arrays must have the same shape")
        errors = int((read_bits != true_bits).sum())
        capability = self.config.page_capability_bits(read_bits.size)
        return DecodeResult(success=errors <= capability, raw_errors=errors, capability=capability)

    def decode_or_raise(self, read_bits: np.ndarray, true_bits: np.ndarray) -> DecodeResult:
        """Like :meth:`decode` but raises :class:`UncorrectableError` on
        failure (the data-loss event of Section 4)."""
        result = self.decode(read_bits, true_bits)
        if not result.success:
            raise UncorrectableError(result.raw_errors, result.capability)
        return result

    def decode_pages(
        self, read_bits: np.ndarray, true_bits: np.ndarray
    ) -> BatchDecodeResult:
        """Batched :meth:`decode`: one ``(pages, page_bits)`` comparison.

        Raw errors fall out of a single XOR-sum over the reshaped bit
        matrices and the capability is resolved once for the shared page
        size, so decoding a whole flushed batch is a few vectorized
        passes instead of a Python loop.

        **Bit-identity.**  ``decode_pages(R, T).page(i)`` equals
        ``decode(R[i], T[i])`` for every row — same raw-error counts,
        same success flags, same capability (pinned by
        ``tests/ecc/test_decoder.py``).  Decoding only reads its
        arguments; it never mutates block state or consumes RNG, so it
        can run on any sensed batch without perturbing the simulation.
        """
        read_bits = np.asarray(read_bits)
        true_bits = np.asarray(true_bits)
        if read_bits.shape != true_bits.shape:
            raise ValueError("read and true bit arrays must have the same shape")
        if read_bits.ndim != 2:
            raise ValueError("decode_pages expects (pages, page_bits) matrices")
        errors = np.count_nonzero(read_bits != true_bits, axis=1).astype(np.int64)
        capability = self.config.page_capability_bits(read_bits.shape[1])
        return BatchDecodeResult(
            raw_errors=errors, success=errors <= capability, capability=capability
        )

    def check_page(
        self,
        flash_block,
        page: int,
        now: float = 0.0,
        vpass: float | None = None,
        record_disturb: bool = False,
    ) -> DecodeResult:
        """Decode one page of a simulated :class:`~repro.flash.block.FlashBlock`.

        This is the controller-side decode of a host read: sense the page
        at the current simulation time and compare against the programmed
        data.  Disturb recording defaults to off because the caller (the
        simulation engine) accounts read disturb in bulk per window.
        """
        kwargs = {} if vpass is None else {"vpass": vpass}
        read_bits = flash_block.read_page(
            page, now, record_disturb=record_disturb, **kwargs
        )
        true_bits = flash_block.expected_page_bits(page)
        return self.decode(read_bits, true_bits)

    def check_pages(
        self,
        flash_block,
        pages: np.ndarray,
        now: float = 0.0,
        vpass: float | None = None,
        record_disturb: bool = False,
    ) -> BatchDecodeResult:
        """Batched :meth:`check_page` against one simulated block.

        Uses the block's fused error counting
        (:meth:`~repro.flash.block.FlashBlock.page_error_counts`), so the
        whole batch shares a single voltage materialization.

        **Bit-identity.**  Results equal a non-recording
        :meth:`check_page` loop over *pages*; every page is sensed at
        the batch's entry exposure (recording, when enabled, charges
        disturb after sensing — the flush-granular contract of
        :meth:`~repro.controller.backends.FlashChipBackend.on_reads`).

        **Cache precondition.**  Inherits the block's ``(now,
        voltage_epoch)`` cache contract: out-of-band cell mutations need
        :meth:`~repro.flash.block.FlashBlock.invalidate_voltage_cache`
        before decoding.
        """
        kwargs = {} if vpass is None else {"vpass": vpass}
        errors = flash_block.page_error_counts(
            pages, now, record_disturb=record_disturb, **kwargs
        )
        capability = self.config.page_capability_bits(
            flash_block.geometry.bitlines_per_block
        )
        return BatchDecodeResult(
            raw_errors=errors, success=errors <= capability, capability=capability
        )
