"""Threshold ECC decoder model.

Decoding succeeds (and reports the exact corrected-error count, as real
controllers expose for wear tracking) whenever the raw error count is
within the page capability; otherwise the read is uncorrectable — the
condition RDR exists to repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.config import EccConfig, DEFAULT_ECC


class UncorrectableError(Exception):
    """Raised when a page read contains more errors than ECC can correct."""

    def __init__(self, errors: int, capability: int):
        super().__init__(
            f"uncorrectable page: {errors} raw bit errors exceed ECC capability {capability}"
        )
        self.errors = errors
        self.capability = capability


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one page."""

    success: bool
    raw_errors: int
    capability: int

    @property
    def margin(self) -> int:
        """Unused correction capability (negative when decoding failed)."""
        return self.capability - self.raw_errors


class EccDecoder:
    """Decode pages by comparing raw reads against ground truth.

    The simulator knows the programmed data, so the decoder counts raw
    errors exactly; a real BCH decoder reports the same number on success.
    """

    def __init__(self, config: EccConfig = DEFAULT_ECC):
        self.config = config

    def decode(self, read_bits: np.ndarray, true_bits: np.ndarray) -> DecodeResult:
        """Attempt to decode a raw page read.  Never raises; inspect
        :attr:`DecodeResult.success`."""
        read_bits = np.asarray(read_bits)
        true_bits = np.asarray(true_bits)
        if read_bits.shape != true_bits.shape:
            raise ValueError("read and true bit arrays must have the same shape")
        errors = int((read_bits != true_bits).sum())
        capability = self.config.page_capability_bits(read_bits.size)
        return DecodeResult(success=errors <= capability, raw_errors=errors, capability=capability)

    def decode_or_raise(self, read_bits: np.ndarray, true_bits: np.ndarray) -> DecodeResult:
        """Like :meth:`decode` but raises :class:`UncorrectableError` on
        failure (the data-loss event of Section 4)."""
        result = self.decode(read_bits, true_bits)
        if not result.success:
            raise UncorrectableError(result.raw_errors, result.capability)
        return result

    def check_page(
        self,
        flash_block,
        page: int,
        now: float = 0.0,
        vpass: float | None = None,
        record_disturb: bool = False,
    ) -> DecodeResult:
        """Decode one page of a simulated :class:`~repro.flash.block.FlashBlock`.

        This is the controller-side decode of a host read: sense the page
        at the current simulation time and compare against the programmed
        data.  Disturb recording defaults to off because the caller (the
        simulation engine) accounts read disturb in bulk per window.
        """
        kwargs = {} if vpass is None else {"vpass": vpass}
        read_bits = flash_block.read_page(
            page, now, record_disturb=record_disturb, **kwargs
        )
        true_bits = flash_block.expected_page_bits(page)
        return self.decode(read_bits, true_bits)
